"""Declarative sweep engine: run plans, shared preprocessing, parallel runs.

The paper's results are all *sweeps* — grids over (strategy × fault density ×
region × seed).  This module turns those grids into data:

* :class:`RunSpec` — a frozen, canonicalised description of one training run
  (exactly the signature :func:`repro.experiments.runner.run_single` keys on).
* :class:`SweepPlan` — an ordered, de-duplicated collection of specs; figure
  drivers declare their grids as plans instead of nested ``run_single`` loops.
* :class:`SweepEngine` — executes a plan with

  - **shared preprocessing artifacts**: the dataset, the cluster partition,
    the mini-batches, the adjacency block decomposition and the mapping plans
    are content-keyed on ``(dataset, scale, seed)`` (+ the hardware geometry /
    plan signature where relevant); the hardware fault maps and the
    pre-deployment BIST scan are keyed on the *fault signature*
    ``(scale, density, sa_ratio, seed, fault_region)``.  Runs that share a key
    reuse the artifact instead of rebuilding it per grid cell.
  - **process-parallel execution**: ``max_workers=N`` distributes whole
    artifact groups to spawned worker processes.  Results are keyed by spec
    and merged in plan order, so serial and parallel execution produce
    bit-identical result mappings.
  - **a persistent on-disk result store** (:class:`ResultStore`, JSON files
    under ``benchmarks/results/runcache/`` keyed by the run-signature hash)
    that replaces the session-only result dict of the seed ``run_single``.

Equivalence contract
--------------------
Artifact sharing never changes a run's *outcome*: every shared object is
either immutable in practice (graphs, batches, blocks, BIST reports, mapping
plans — all consumed read-only by the trainer) or rebuilt per run from a
deterministic snapshot (crossbar fault maps + the fault model's RNG state, so
post-deployment injection continues the exact random stream of the unshared
path).  Loss/accuracy histories are bit-identical with and without sharing;
work counters (``mapping_*``) reflect the planning work *actually performed*,
so a run that reuses a shared mapping plan reports the plan work once, on the
run that computed it.

Cache invalidation (the third protocol, next to ``hw_state`` version counters
and cost-engine content fingerprints — see ``docs/ARCHITECTURE.md``): the
on-disk store names files by :meth:`RunSpec.signature`, a SHA-256 over the
canonical spec payload and :data:`SIGNATURE_VERSION`.  Bump the version
whenever a semantic change makes old results stale; stored files whose
embedded signature no longer matches their spec are deleted on load.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, fields, replace
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.strategies import Strategy, build_strategy
from repro.experiments import configs
from repro.graph.datasets import load_dataset
from repro.graph.partition import PartitionResult, partition_graph
from repro.graph.sampling import ClusterBatch, ClusterBatchSampler
from repro.hardware.bist import BISTReport
from repro.hardware.endurance import PostDeploymentSchedule
from repro.hardware.faults import FaultMap, FaultModel
from repro.hardware.quantization import FixedPointFormat
from repro.pipeline.mapping_engine import HardwareEnvironment, decompose_adjacency
from repro.pipeline.trainer import FaultyTrainer, TrainerArtifacts, TrainingResult
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_rngs

logger = get_logger("experiments.sweeps")

#: Bump on any semantic change that invalidates previously stored results.
SIGNATURE_VERSION = 1

#: Canonical SA0:SA1 ratio used when the ratio cannot affect the outcome.
DEFAULT_SA_RATIO: Tuple[float, float] = (9.0, 1.0)

_VALID_FAULT_REGIONS = ("both", "weights", "adjacency")


# --------------------------------------------------------------------------- #
# RunSpec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunSpec:
    """One training run, canonicalised so equal configurations compare equal.

    Use :meth:`make` instead of the raw constructor: it lower-cases names,
    rounds the fault density, resolves the scale's default strategy kwargs
    and canonicalises fields that cannot affect the outcome (the SA ratio and
    fault region of a fault-free run), so specs de-duplicate across figures.
    """

    dataset: str
    model: str
    strategy: str
    fault_density: float
    sa_ratio: Tuple[float, float] = DEFAULT_SA_RATIO
    scale: str = "ci"
    seed: int = 0
    epochs: Optional[int] = None
    post_deployment_extra: Optional[float] = None
    fault_region: str = "both"
    strategy_kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        dataset: str,
        model: str,
        strategy: str,
        fault_density: float,
        sa_ratio: Tuple[float, float] = DEFAULT_SA_RATIO,
        scale: str = "ci",
        seed: int = 0,
        epochs: Optional[int] = None,
        post_deployment_extra: Optional[float] = None,
        fault_region: str = "both",
        strategy_kwargs: Optional[Dict] = None,
    ) -> "RunSpec":
        if fault_region not in _VALID_FAULT_REGIONS:
            raise ValueError(
                f"fault_region must be one of {_VALID_FAULT_REGIONS}, got "
                f"{fault_region!r}"
            )
        strategy = str(strategy).lower()
        density = round(float(fault_density), 6)
        # Falsy kwargs (None or {}) resolve to the scale-tuned defaults —
        # exactly the seed runner's `strategy_kwargs or strategy_kwargs_for`
        # behaviour, so both call patterns land on the same canonical spec.
        kwargs = (
            dict(strategy_kwargs)
            if strategy_kwargs
            else configs.strategy_kwargs_for(strategy, scale)
        )
        ratio = tuple(float(x) for x in sa_ratio)
        extra = (
            None if not post_deployment_extra else round(float(post_deployment_extra), 6)
        )
        if density == 0.0:
            # No fault model is built: the ratio and region cannot influence
            # the run, so canonicalise them and let fault-free baselines from
            # different panels collapse into one spec.
            ratio = DEFAULT_SA_RATIO
            fault_region = "both"
        return cls(
            dataset=str(dataset).lower(),
            model=str(model).lower(),
            strategy=strategy,
            fault_density=density,
            sa_ratio=ratio,
            scale=str(scale),
            seed=int(seed),
            epochs=None if epochs is None else int(epochs),
            post_deployment_extra=extra,
            fault_region=fault_region,
            strategy_kwargs=tuple(sorted(kwargs.items())),
        )

    # ------------------------------------------------------------------ #
    def artifact_group(self) -> Tuple:
        """Key of the graph-side artifacts (dataset, partition, batches)."""
        return (self.dataset, self.scale, self.seed)

    def fault_signature(self) -> Tuple:
        """Key of the hardware-side artifacts (fault maps, BIST report)."""
        return (
            self.scale,
            self.fault_density,
            self.sa_ratio,
            self.seed,
            self.fault_region,
        )

    def to_dict(self) -> Dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        payload["sa_ratio"] = list(self.sa_ratio)
        payload["strategy_kwargs"] = [[k, v] for k, v in self.strategy_kwargs]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSpec":
        return cls.make(
            dataset=payload["dataset"],
            model=payload["model"],
            strategy=payload["strategy"],
            fault_density=payload["fault_density"],
            sa_ratio=tuple(payload["sa_ratio"]),
            scale=payload["scale"],
            seed=payload["seed"],
            epochs=payload["epochs"],
            post_deployment_extra=payload["post_deployment_extra"],
            fault_region=payload["fault_region"],
            strategy_kwargs=dict(
                (k, v) for k, v in payload.get("strategy_kwargs", [])
            ),
        )

    def signature(self) -> str:
        """Content hash naming this run in the on-disk result store."""
        payload = {"signature_version": SIGNATURE_VERSION, **self.to_dict()}
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()[:24]


# --------------------------------------------------------------------------- #
# SweepPlan
# --------------------------------------------------------------------------- #
class SweepPlan:
    """An ordered, de-duplicated sequence of :class:`RunSpec`."""

    def __init__(self, specs: Iterable[RunSpec] = ()) -> None:
        unique: "OrderedDict[RunSpec, None]" = OrderedDict()
        for spec in specs:
            if not isinstance(spec, RunSpec):
                raise TypeError(f"SweepPlan takes RunSpec instances, got {spec!r}")
            unique.setdefault(spec, None)
        self.specs: Tuple[RunSpec, ...] = tuple(unique)

    @classmethod
    def grid(
        cls,
        datasets: Sequence[Tuple[str, str]],
        strategies: Sequence[str],
        fault_densities: Sequence[float],
        sa_ratio: Tuple[float, float] = DEFAULT_SA_RATIO,
        seeds: Sequence[int] = (0,),
        scale: str = "ci",
        epochs: Optional[int] = None,
        post_deployment_extra: Optional[float] = None,
        fault_region: str = "both",
    ) -> "SweepPlan":
        """Expand a figure-shaped axis grid into a plan.

        ``datasets`` is a sequence of ``(dataset, model)`` pairs.  Following
        the figure drivers' convention, the ``fault_free`` strategy is run at
        density 0 with no post-deployment schedule regardless of the density
        axis (one baseline per workload/seed, de-duplicated by construction).
        """
        specs: List[RunSpec] = []
        for seed in seeds:
            for dataset, model in datasets:
                for density in fault_densities:
                    for strategy in strategies:
                        reference = strategy == "fault_free"
                        specs.append(
                            RunSpec.make(
                                dataset,
                                model,
                                strategy,
                                0.0 if reference else density,
                                sa_ratio=sa_ratio,
                                scale=scale,
                                seed=seed,
                                epochs=epochs,
                                post_deployment_extra=(
                                    None if reference else post_deployment_extra
                                ),
                                fault_region=fault_region,
                            )
                        )
        return cls(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __add__(self, other: "SweepPlan") -> "SweepPlan":
        return SweepPlan(self.specs + tuple(other.specs))

    def groups(self) -> "OrderedDict[Tuple, List[RunSpec]]":
        """Specs grouped by :meth:`RunSpec.artifact_group` (first-seen order)."""
        grouped: "OrderedDict[Tuple, List[RunSpec]]" = OrderedDict()
        for spec in self.specs:
            grouped.setdefault(spec.artifact_group(), []).append(spec)
        return grouped

    def __repr__(self) -> str:
        return f"SweepPlan({len(self.specs)} specs)"


# --------------------------------------------------------------------------- #
# Hardware construction (shared with runner.build_hardware)
# --------------------------------------------------------------------------- #
def _environment_for_scale(scale: str) -> HardwareEnvironment:
    """Fault-free :class:`HardwareEnvironment` with the scale's geometry."""
    settings = configs.scale_settings(scale)
    hw_config = configs.hardware_config(scale)
    return HardwareEnvironment(
        config=hw_config,
        fault_model=None,
        weight_fraction=settings.weight_fraction,
        fmt=FixedPointFormat(
            total_bits=hw_config.weight_bits,
            max_value=settings.weight_max_value,
            bits_per_cell=hw_config.bits_per_cell,
        ),
        num_crossbars=settings.num_crossbars,
    )


def build_hardware(
    scale: str,
    fault_density: float,
    sa_ratio: Tuple[float, float],
    seed: int,
    fault_region: str = "both",
) -> HardwareEnvironment:
    """Create a :class:`HardwareEnvironment` with injected pre-deployment faults.

    Parameters
    ----------
    fault_region:
        ``'both'`` (default) injects faults everywhere; ``'weights'`` or
        ``'adjacency'`` clears the fault maps of the other region — used by
        the Fig. 3 per-phase sensitivity study.
    """
    if fault_region not in _VALID_FAULT_REGIONS:
        raise ValueError(
            f"fault_region must be 'both', 'weights' or 'adjacency', got {fault_region!r}"
        )
    hardware = _environment_for_scale(scale)
    if fault_density > 0:
        fault_model = FaultModel(fault_density, sa0_sa1_ratio=sa_ratio, seed=seed)
        hardware.pool.inject_pre_deployment(fault_model)
        hardware.fault_model = fault_model
    if fault_region != "both":
        cleared = (
            hardware.adjacency_crossbars
            if fault_region == "weights"
            else hardware.weight_crossbars
        )
        for crossbar in cleared:
            crossbar.set_fault_map(FaultMap.empty(crossbar.rows, crossbar.cols))
    return hardware


@dataclass
class HardwareSnapshot:
    """Deterministic state needed to rebuild one fault scenario.

    ``fault_maps`` are the post-injection (and post region-clearing) maps of
    the whole pool; ``rng_state`` is the fault model's generator state *after*
    pre-deployment sampling, so a rebuilt environment's post-deployment
    injection continues the exact random stream of a freshly built one.
    """

    fault_maps: List[FaultMap]
    fault_density: float
    sa_ratio: Tuple[float, float]
    rng_state: Optional[dict]

    @classmethod
    def capture(cls, hardware: HardwareEnvironment, spec: RunSpec) -> "HardwareSnapshot":
        model = hardware.pool.fault_model
        return cls(
            fault_maps=[fmap.copy() for fmap in hardware.pool.fault_maps()],
            fault_density=spec.fault_density,
            sa_ratio=spec.sa_ratio,
            rng_state=None if model is None else copy.deepcopy(model.rng_state),
        )

    def restore(self, scale: str) -> HardwareEnvironment:
        hardware = _environment_for_scale(scale)
        if len(self.fault_maps) != len(hardware.pool):
            raise ValueError(
                f"snapshot holds {len(self.fault_maps)} fault maps but the "
                f"pool has {len(hardware.pool)} crossbars"
            )
        for crossbar, fmap in zip(hardware.pool.crossbars, self.fault_maps):
            crossbar.set_fault_map(fmap.copy())
        if self.rng_state is not None:
            model = FaultModel(self.fault_density, sa0_sa1_ratio=self.sa_ratio)
            model.rng_state = copy.deepcopy(self.rng_state)
            hardware.pool.fault_model = model
            hardware.fault_model = model
        return hardware


# --------------------------------------------------------------------------- #
# Artifact cache
# --------------------------------------------------------------------------- #
class _LRU:
    """Small LRU dict with hit/miss/eviction counters."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key, compute):
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def peek(self, key):
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class ArtifactCache:
    """Content-keyed, LRU-bounded cache of shared preprocessing artifacts.

    One instance serves one process (the engine's for serial execution, a
    process-global one inside each spawned worker).  Every artifact is keyed
    by the spec fields it actually depends on, never by the spec itself, so
    runs from different grid cells share aggressively:

    ===============  =====================================================
    artifact         key
    ===============  =====================================================
    graph            (dataset, scale, seed)
    partition        (dataset, scale, seed, num_parts)
    batches          (dataset, scale, seed, num_parts, batch_clusters)
    decomposition    batches key + (crossbar_rows, crossbar_cols)
    hardware         (scale, density, sa_ratio, seed, fault_region)
    bist report      hardware key
    mapping plans    decomposition key + hardware key + plan signature
    ===============  =====================================================

    Graphs, batches, blocks, reports and plans are handed out as shared
    read-only objects; hardware environments are rebuilt per run from a
    :class:`HardwareSnapshot` because training mutates crossbar state.
    """

    #: Per-kind LRU capacities (entries, not bytes): graph-side artifacts are
    #: the big ones, a handful of groups in flight is plenty.
    CAPACITIES = {
        "graph": 4,
        "partition": 8,
        "batches": 4,
        "decomposition": 4,
        "hardware": 8,
        "bist": 8,
        "plans": 16,
    }

    def __init__(self, capacities: Optional[Dict[str, int]] = None) -> None:
        caps = dict(self.CAPACITIES)
        if capacities:
            caps.update(capacities)
        self._caches: Dict[str, _LRU] = {
            kind: _LRU(capacity) for kind, capacity in caps.items()
        }

    # ------------------------------------------------------------------ #
    def _batch_shape(self, spec: RunSpec) -> Tuple[int, int]:
        config = configs.training_config(
            spec.dataset, spec.scale, seed=spec.seed, epochs=spec.epochs
        )
        return config.num_parts, config.batch_clusters

    def graph(self, spec: RunSpec):
        key = spec.artifact_group()
        return self._caches["graph"].get(
            key, lambda: load_dataset(spec.dataset, scale=spec.scale, seed=spec.seed)
        )

    def partition(self, spec: RunSpec) -> PartitionResult:
        num_parts, _ = self._batch_shape(spec)
        key = spec.artifact_group() + (num_parts,)

        def compute() -> PartitionResult:
            graph = self.graph(spec)
            # Replay the trainer's RNG derivation: the sampler stream is the
            # second of the three children spawned from the training seed.
            _, rng_sampler, _ = spawn_rngs(spec.seed, 3)
            return partition_graph(graph.adjacency, num_parts, seed=rng_sampler)

        return self._caches["partition"].get(key, compute)

    def batches(self, spec: RunSpec) -> List[ClusterBatch]:
        num_parts, batch_clusters = self._batch_shape(spec)
        key = spec.artifact_group() + (num_parts, batch_clusters)

        def compute() -> List[ClusterBatch]:
            sampler = ClusterBatchSampler(
                self.graph(spec),
                num_parts=num_parts,
                batch_clusters=batch_clusters,
                seed=None,
                partition=self.partition(spec),
            )
            return list(sampler.epoch(shuffle=False))

        return self._caches["batches"].get(key, compute)

    def decomposition(self, spec: RunSpec):
        """Per-batch ``(blocks, grid)`` decompositions for the scale's geometry."""
        hw_config = configs.hardware_config(spec.scale)
        num_parts, batch_clusters = self._batch_shape(spec)
        key = spec.artifact_group() + (
            num_parts,
            batch_clusters,
            hw_config.crossbar_rows,
            hw_config.crossbar_cols,
        )

        def compute():
            blocks_per_batch = []
            grids = []
            for batch in self.batches(spec):
                blocks, grid = decompose_adjacency(
                    batch.subgraph.adjacency,
                    hw_config.crossbar_rows,
                    hw_config.crossbar_cols,
                )
                blocks_per_batch.append(blocks)
                grids.append(grid)
            return blocks_per_batch, grids

        return self._caches["decomposition"].get(key, compute)

    def hardware(self, spec: RunSpec) -> HardwareEnvironment:
        """A fresh environment for ``spec`` (fault maps/RNG from snapshot)."""
        key = spec.fault_signature()
        snapshot = self._caches["hardware"].peek(key)
        if snapshot is None:
            self._caches["hardware"].misses += 1
            hardware = build_hardware(
                spec.scale,
                spec.fault_density,
                spec.sa_ratio,
                seed=spec.seed,
                fault_region=spec.fault_region,
            )
            self._caches["hardware"].put(key, HardwareSnapshot.capture(hardware, spec))
            return hardware
        self._caches["hardware"].hits += 1
        return snapshot.restore(spec.scale)

    def bist_report(self, spec: RunSpec, hardware: HardwareEnvironment) -> BISTReport:
        key = spec.fault_signature()
        return self._caches["bist"].get(
            key, lambda: hardware.bist.scan(hardware.adjacency_crossbars)
        )

    def plans(
        self,
        spec: RunSpec,
        strategy: Strategy,
        blocks_per_batch,
        report: BISTReport,
        crossbar_ids: Sequence[int],
        crossbar_rows: int,
    ):
        """Shared adjacency mapping plans, or ``None`` when not shareable.

        Keyed by the strategy's :meth:`~repro.core.strategies.Strategy.plan_signature`
        (strategies whose planning coincides — e.g. fault-unaware and weight
        clipping both use the sequential mapping — share one plan; FARe plans
        are additionally shared across *models*, since adjacency planning
        does not depend on the model).  The plan is computed with the
        caller's strategy instance, so planning work counters land on the run
        that actually did the work.
        """
        plan_signature = strategy.plan_signature()
        if plan_signature is None:
            return None
        hw_config = configs.hardware_config(spec.scale)
        num_parts, batch_clusters = self._batch_shape(spec)
        key = (
            spec.artifact_group()
            + (num_parts, batch_clusters, hw_config.crossbar_rows, hw_config.crossbar_cols)
            + spec.fault_signature()
            + plan_signature
        )
        return self._caches["plans"].get(
            key,
            lambda: strategy.plan_adjacency(
                blocks_per_batch, report.fault_maps, crossbar_ids, crossbar_rows
            ),
        )

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Flat ``artifact_<kind>_{hits,misses,evictions}`` counters."""
        stats: Dict[str, float] = {}
        for kind, cache in self._caches.items():
            stats[f"artifact_{kind}_hits"] = float(cache.hits)
            stats[f"artifact_{kind}_misses"] = float(cache.misses)
            if cache.evictions:
                stats[f"artifact_{kind}_evictions"] = float(cache.evictions)
        return stats

    def clear(self) -> None:
        for cache in self._caches.values():
            cache.clear()


# --------------------------------------------------------------------------- #
# Single-run execution
# --------------------------------------------------------------------------- #
def execute_spec(
    spec: RunSpec, artifacts: Optional[ArtifactCache] = None
) -> TrainingResult:
    """Train one spec and return its result.

    With ``artifacts=None`` every input is rebuilt from scratch — byte-for-byte
    the seed ``run_single`` behaviour, kept as the reference path for the
    equivalence tests and the sweep benchmark baseline.  With an
    :class:`ArtifactCache`, shared preprocessing is reused as described in the
    module docstring; the training outcome is bit-identical either way.
    """
    strategy_kwargs = dict(spec.strategy_kwargs)
    training_config = configs.training_config(
        spec.dataset, spec.scale, seed=spec.seed, epochs=spec.epochs
    )
    strategy = build_strategy(spec.strategy, **strategy_kwargs)

    hardware = None
    post_deployment = None
    trainer_artifacts = None
    if artifacts is None:
        graph = load_dataset(spec.dataset, scale=spec.scale, seed=spec.seed)
        if strategy.requires_hardware:
            hardware = build_hardware(
                spec.scale,
                spec.fault_density,
                spec.sa_ratio,
                seed=spec.seed,
                fault_region=spec.fault_region,
            )
    else:
        graph = artifacts.graph(spec)
        trainer_artifacts = TrainerArtifacts(
            partition=artifacts.partition(spec),
            batches=artifacts.batches(spec),
        )
        if strategy.requires_hardware:
            hardware = artifacts.hardware(spec)
            blocks_per_batch, grids = artifacts.decomposition(spec)
            report = artifacts.bist_report(spec, hardware)
            crossbar_ids = [x.crossbar_id for x in hardware.adjacency_crossbars]
            trainer_artifacts = replace(
                trainer_artifacts,
                blocks_per_batch=blocks_per_batch,
                grids=grids,
                bist_report=report,
                plans=artifacts.plans(
                    spec,
                    strategy,
                    blocks_per_batch,
                    report,
                    crossbar_ids,
                    hardware.config.crossbar_rows,
                ),
            )
    if strategy.requires_hardware and spec.post_deployment_extra:
        post_deployment = PostDeploymentSchedule(
            total_extra_density=spec.post_deployment_extra,
            num_epochs=training_config.epochs,
        )

    trainer = FaultyTrainer(
        graph=graph,
        model_name=spec.model,
        strategy=strategy,
        config=training_config,
        hardware=hardware,
        post_deployment=post_deployment,
        artifacts=trainer_artifacts,
    )
    logger.info(
        "training %s/%s strategy=%s density=%.3f ratio=%s scale=%s seed=%d",
        spec.dataset,
        spec.model,
        spec.strategy,
        spec.fault_density,
        spec.sa_ratio,
        spec.scale,
        spec.seed,
    )
    return trainer.train()


# --------------------------------------------------------------------------- #
# On-disk result store
# --------------------------------------------------------------------------- #
def serialize_result(result: TrainingResult) -> Dict:
    """JSON-friendly representation of a :class:`TrainingResult`."""
    return {f.name: getattr(result, f.name) for f in fields(TrainingResult)}


def deserialize_result(payload: Dict) -> TrainingResult:
    kwargs = {f.name: payload[f.name] for f in fields(TrainingResult)}
    kwargs["counters"] = {k: float(v) for k, v in kwargs["counters"].items()}
    for name in ("train_accuracy_history", "test_accuracy_history", "loss_history"):
        kwargs[name] = [float(v) for v in kwargs[name]]
    return TrainingResult(**kwargs)


def default_store_dir() -> Path:
    """Resolve the default on-disk store location.

    ``REPRO_RUNCACHE_DIR`` wins; otherwise ``benchmarks/results/runcache/``
    next to the source tree (the repository layout), falling back to a local
    ``.repro_runcache`` directory for installed copies.
    """
    override = os.environ.get("REPRO_RUNCACHE_DIR")
    if override:
        return Path(override)
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "results" / "runcache"
    return Path.cwd() / ".repro_runcache"


class ResultStore:
    """Persistent JSON result store keyed by :meth:`RunSpec.signature`.

    Each result lands in ``<directory>/<signature>.json`` together with the
    spec that produced it and the signature version.  Loading validates that
    the stored signature still matches the spec's current signature; stale
    files (version bumps, semantic changes) are deleted and reported as
    invalidations.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_store_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidations = 0
        self._pruned = False

    def path(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.signature()}.json"

    def prune_stale(self) -> int:
        """Delete stored results from other signature versions.

        A :data:`SIGNATURE_VERSION` bump changes every filename, so outdated
        files would never be looked up (and thus never invalidated) by
        :meth:`load`; this garbage-collects them instead of letting the
        store grow by one result set per version bump.  Runs automatically
        once per store instance, on the first :meth:`save` or the first
        :meth:`load` against an existing directory.
        """
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                version = json.loads(path.read_text()).get("signature_version")
            except (OSError, json.JSONDecodeError):
                version = None
            if version != SIGNATURE_VERSION:
                self._invalidate(path)
                removed += 1
        # Orphaned atomic-write temp files (crash between write and replace).
        for path in self.directory.glob("*.tmp.*"):
            self._invalidate(path)
            removed += 1
        return removed

    def load(self, spec: RunSpec) -> Optional[TrainingResult]:
        if not self._pruned and self.directory.is_dir():
            self._pruned = True
            self.prune_stale()
        path = self.path(spec)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(path)
            self.misses += 1
            return None
        if (
            payload.get("signature") != spec.signature()
            or payload.get("signature_version") != SIGNATURE_VERSION
        ):
            self._invalidate(path)
            self.misses += 1
            return None
        try:
            result = deserialize_result(payload["result"])
        except (KeyError, TypeError, ValueError):
            self._invalidate(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, spec: RunSpec, result: TrainingResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self._pruned:
            self._pruned = True
            self.prune_stale()
        payload = {
            "signature": spec.signature(),
            "signature_version": SIGNATURE_VERSION,
            "spec": spec.to_dict(),
            "result": serialize_result(result),
        }
        # Atomic publish: a concurrent reader must never see (and then
        # invalidate-delete) a half-written file, and a crash mid-write must
        # not leave a truncated one behind.
        path = self.path(spec)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        temp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(temp, path)
        self.writes += 1

    def _invalidate(self, path: Path) -> None:
        self.invalidations += 1
        try:
            path.unlink()
        except OSError:
            pass

    def stats(self) -> Dict[str, float]:
        return {
            "store_hits": float(self.hits),
            "store_misses": float(self.misses),
            "store_writes": float(self.writes),
            "store_invalidations": float(self.invalidations),
        }


# --------------------------------------------------------------------------- #
# Parallel worker plumbing
# --------------------------------------------------------------------------- #
#: Per-worker-process artifact cache (created lazily on first task).
_WORKER_ARTIFACTS: Optional[ArtifactCache] = None


def _run_group_in_worker(specs: List[RunSpec]):
    """Execute one artifact group inside a spawned worker process.

    Returns ``(pairs, stats_delta)`` where ``pairs`` is ``[(spec, result)]``
    in group order and ``stats_delta`` the artifact counters this task added.
    Sharing is scoped to the group (plans and graph artifacts key on the
    group itself), so per-run results are identical no matter which process a
    group lands in.
    """
    global _WORKER_ARTIFACTS
    if _WORKER_ARTIFACTS is None:
        _WORKER_ARTIFACTS = ArtifactCache()
    before = _WORKER_ARTIFACTS.stats()
    pairs = [(spec, execute_spec(spec, _WORKER_ARTIFACTS)) for spec in specs]
    after = _WORKER_ARTIFACTS.stats()
    delta = {key: after[key] - before.get(key, 0.0) for key in after}
    return pairs, delta


# --------------------------------------------------------------------------- #
# Sweep engine
# --------------------------------------------------------------------------- #
@dataclass
class SweepResult:
    """Spec-keyed results of one :meth:`SweepEngine.run` call."""

    plan: SweepPlan
    results: Dict[RunSpec, TrainingResult] = field(default_factory=dict)

    def __getitem__(self, spec: RunSpec) -> TrainingResult:
        return self.results[spec]

    def __len__(self) -> int:
        return len(self.results)


class SweepEngine:
    """Executes :class:`SweepPlan`\\ s with caching, sharing and parallelism.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` for cross-session persistence.  ``None``
        (default) keeps results in-process only, like the seed runner.
    memo_capacity:
        LRU bound of the in-process result memo (the seed runner's unbounded
        ``_RESULT_CACHE``, now capped and instrumented).
    max_workers:
        Default process count for :meth:`run`; 1 executes in-process.
    share_artifacts:
        Disable to rebuild every input per run (the seed behaviour) while
        keeping memo/store semantics — used by equivalence tests.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        memo_capacity: int = 128,
        max_workers: int = 1,
        share_artifacts: bool = True,
    ) -> None:
        self.store = store
        self.memo = _LRU(memo_capacity)
        self.max_workers = max(1, int(max_workers))
        self.share_artifacts = bool(share_artifacts)
        self.artifacts = ArtifactCache()
        self.runs_executed = 0
        self._parallel_artifact_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def clear_memo(self) -> None:
        """Drop memoised results and shared artifacts (used by tests)."""
        self.memo.clear()
        self.artifacts.clear()

    def memo_size(self) -> int:
        return len(self.memo)

    # ------------------------------------------------------------------ #
    def run(
        self,
        plan: SweepPlan,
        max_workers: Optional[int] = None,
    ) -> SweepResult:
        """Execute every spec of ``plan`` and return spec-keyed results.

        Specs already memoised (or present in the store) are served from
        cache; the rest execute grouped by :meth:`RunSpec.artifact_group`,
        either in-process or across ``max_workers`` spawned processes.  The
        result mapping is keyed by spec and merged in plan order, so serial
        and parallel execution are bit-identical.
        """
        workers = self.max_workers if max_workers is None else max(1, int(max_workers))
        sweep = SweepResult(plan=plan)
        pending: List[RunSpec] = []
        for spec in plan:
            cached = self.memo.peek(spec)
            if cached is not None:
                self.memo.hits += 1
            else:
                self.memo.misses += 1
                if self.store is not None:
                    cached = self.store.load(spec)
                    if cached is not None:
                        self.memo.put(spec, cached)
            if cached is not None:
                sweep.results[spec] = cached
            else:
                pending.append(spec)

        if pending:
            groups = SweepPlan(pending).groups()
            # Parallelism distributes whole artifact groups; with a single
            # group there is nothing to overlap and a spawned worker would
            # only add interpreter-start + re-import + pickling overhead.
            if workers > 1 and len(groups) > 1:
                executed = self._run_parallel(groups, workers)
            else:
                executed = self._run_serial(groups)
            for spec, result in executed:
                sweep.results[spec] = result
                self.memo.put(spec, result)
                if self.store is not None:
                    self.store.save(spec, result)
                self.runs_executed += 1
        return sweep

    def _run_serial(self, groups) -> List[Tuple[RunSpec, TrainingResult]]:
        artifacts = self.artifacts if self.share_artifacts else None
        executed: List[Tuple[RunSpec, TrainingResult]] = []
        for specs in groups.values():
            for spec in specs:
                executed.append((spec, execute_spec(spec, artifacts)))
        return executed

    def _run_parallel(self, groups, workers) -> List[Tuple[RunSpec, TrainingResult]]:
        """Distribute whole artifact groups over spawned worker processes.

        Spawn (not fork) keeps workers deterministic and safe with threaded
        BLAS.  One task per group: each group's runs execute in order inside
        one process, so the intra-group artifact reuse pattern — the only
        sharing that can influence per-run work counters — matches serial
        execution exactly.
        """
        if not self.share_artifacts:
            raise ValueError("parallel execution requires share_artifacts=True")
        group_lists = list(groups.values())
        executed_by_spec: Dict[RunSpec, TrainingResult] = {}
        context = get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(group_lists)), mp_context=context
        ) as pool:
            futures = [pool.submit(_run_group_in_worker, specs) for specs in group_lists]
            for future in futures:
                pairs, stats_delta = future.result()
                for spec, result in pairs:
                    executed_by_spec[spec] = result
                for key, value in stats_delta.items():
                    self._parallel_artifact_stats[key] = (
                        self._parallel_artifact_stats.get(key, 0.0) + value
                    )
        # Deterministic merge order: plan order, not completion order.
        return [
            (spec, executed_by_spec[spec])
            for specs in group_lists
            for spec in specs
        ]

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Flat counter mapping: memo, store and artifact-cache hit rates.

        Same stats-plumbing convention as the ``kernel_*`` / cost-engine
        counters: plain ``name → number`` so callers can merge it into
        benchmark metrics or print it directly.
        """
        stats: Dict[str, float] = {
            "runs_executed": float(self.runs_executed),
            "memo_hits": float(self.memo.hits),
            "memo_misses": float(self.memo.misses),
            "memo_evictions": float(self.memo.evictions),
        }
        artifact_stats = dict(self.artifacts.stats())
        for key, value in self._parallel_artifact_stats.items():
            artifact_stats[key] = artifact_stats.get(key, 0.0) + value
        stats.update(artifact_stats)
        if self.store is not None:
            stats.update(self.store.stats())
        return stats

    def format_summary(self) -> str:
        lines = ["sweep engine summary:"]
        for key, value in sorted(self.summary().items()):
            lines.append(f"  {key:32s} {value:g}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Seed replication
# --------------------------------------------------------------------------- #
def default_engine() -> SweepEngine:
    """The process-wide engine shared by ``run_single`` and figure drivers.

    Lazy accessor (the engine lives in :mod:`repro.experiments.runner`, which
    imports this module) — the single place that resolves the fallback for
    every ``engine=None`` entry point, so all of them share one memo and one
    artifact cache.
    """
    from repro.experiments.runner import DEFAULT_ENGINE

    return DEFAULT_ENGINE


def run_seed_replicates(
    plan_fn,
    run_fn,
    seeds: Sequence[int],
    engine: Optional[SweepEngine] = None,
    max_workers: Optional[int] = None,
    **kwargs,
):
    """Run one figure driver at several seeds through a single combined plan.

    ``plan_fn(seed=…, **kwargs)`` must return the figure's
    :class:`SweepPlan` and ``run_fn(seed=…, engine=…, **kwargs)`` its
    assembled result.  The union plan executes in one engine pass (so seeds
    parallelise across workers and shared specs — e.g. seed-independent
    baselines — de-duplicate), then each seed's result is assembled from the
    warm memo.  Returns ``{seed: figure result}`` in ``seeds`` order; feed
    the per-seed ``rows()`` to
    :func:`repro.experiments.tables.aggregate_seed_rows` for mean±std tables.
    """
    if engine is None:
        engine = default_engine()
    combined = SweepPlan([])
    for seed in seeds:
        combined = combined + plan_fn(seed=seed, **kwargs)
    # The per-seed assembly below is a pure memo read only if the memo can
    # hold the whole combined plan — otherwise evicted cells would silently
    # re-train.  Grow the cap for the duration of the assembly (results are
    # KB-sized records), then restore it so the engine's advertised LRU
    # bound holds again once this replicate set is done.
    saved_capacity = engine.memo.capacity
    engine.memo.capacity = max(saved_capacity, len(combined) + len(engine.memo))
    try:
        engine.run(combined, max_workers=max_workers)
        return {seed: run_fn(seed=seed, engine=engine, **kwargs) for seed in seeds}
    finally:
        engine.memo.capacity = saved_capacity
