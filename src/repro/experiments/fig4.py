"""Fig. 4 — training-accuracy curves with and without FARe.

The paper trains GCN on Reddit at 1 %, 3 % and 5 % pre-deployment fault
density (SA0:SA1 = 9:1) and plots the per-epoch training accuracy of the
fault-unaware implementation (panel a) and of FARe (panel b) against the
fault-free curve.  The expected shape: the fault-unaware curves are depressed
and unstable, while the FARe curves overlap the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.configs import FIG5_FAULT_DENSITIES, SA_RATIO_9_1
from repro.experiments.runner import run_single
from repro.utils.tabulate import format_table


@dataclass(frozen=True)
class Fig4Result:
    """Per-epoch training accuracy series for both panels."""

    dataset: str
    model: str
    densities: Tuple[float, ...]
    fault_free_curve: List[float]
    fault_unaware_curves: Dict[float, List[float]]
    fare_curves: Dict[float, List[float]]

    def final_gap(self, panel: str, density: float) -> float:
        """Final-epoch training-accuracy gap to the fault-free curve."""
        curves = self.fault_unaware_curves if panel == "fault_unaware" else self.fare_curves
        return self.fault_free_curve[-1] - curves[density][-1]


def run_fig4(
    dataset: str = "reddit",
    model: str = "gcn",
    densities: Tuple[float, ...] = FIG5_FAULT_DENSITIES,
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
) -> Fig4Result:
    """Regenerate both panels of Fig. 4."""
    fault_free = run_single(
        dataset, model, "fault_free", 0.0, scale=scale, seed=seed, epochs=epochs
    )
    fault_unaware_curves: Dict[float, List[float]] = {}
    fare_curves: Dict[float, List[float]] = {}
    for density in densities:
        unaware = run_single(
            dataset, model, "fault_unaware", density,
            sa_ratio=sa_ratio, scale=scale, seed=seed, epochs=epochs,
        )
        fare = run_single(
            dataset, model, "fare", density,
            sa_ratio=sa_ratio, scale=scale, seed=seed, epochs=epochs,
        )
        fault_unaware_curves[density] = list(unaware.train_accuracy_history)
        fare_curves[density] = list(fare.train_accuracy_history)
    return Fig4Result(
        dataset=dataset,
        model=model,
        densities=tuple(densities),
        fault_free_curve=list(fault_free.train_accuracy_history),
        fault_unaware_curves=fault_unaware_curves,
        fare_curves=fare_curves,
    )


def format_fig4(result: Fig4Result) -> str:
    """Render the per-epoch series as two tables (one per panel)."""
    headers = ["Epoch", "fault-free"] + [f"{d:.0%}" for d in result.densities]
    blocks = []
    for panel, curves in (
        ("(a) fault unaware", result.fault_unaware_curves),
        ("(b) FARe", result.fare_curves),
    ):
        rows = []
        for epoch in range(len(result.fault_free_curve)):
            row = [epoch + 1, result.fault_free_curve[epoch]]
            for density in result.densities:
                row.append(curves[density][epoch])
            rows.append(row)
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Fig. 4{panel} — {result.dataset} ({result.model.upper()}) training accuracy",
            )
        )
    return "\n\n".join(blocks)
