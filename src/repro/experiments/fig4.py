"""Fig. 4 — training-accuracy curves with and without FARe.

The paper trains GCN on Reddit at 1 %, 3 % and 5 % pre-deployment fault
density (SA0:SA1 = 9:1) and plots the per-epoch training accuracy of the
fault-unaware implementation (panel a) and of FARe (panel b) against the
fault-free curve.  The expected shape: the fault-unaware curves are depressed
and unstable, while the FARe curves overlap the fault-free one.

The (strategy × fault density) grid is declared as a
:class:`~repro.experiments.sweeps.SweepPlan` (:func:`plan_fig4`); the sweep
benchmark gates the engine's cold wall-clock on exactly this grid shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.configs import FIG5_FAULT_DENSITIES, SA_RATIO_9_1
from repro.experiments.sweeps import (
    RunSpec,
    SweepEngine,
    SweepPlan,
    default_engine,
    run_seed_replicates,
)
from repro.utils.tabulate import format_table

#: Column headers matching :meth:`Fig4Result.rows`.
FIG4_SUMMARY_HEADERS = ["Strategy", "Density", "Final train accuracy", "Gap to fault-free"]


@dataclass(frozen=True)
class Fig4Result:
    """Per-epoch training accuracy series for both panels.

    A curve whose spec was quarantined by the fault-tolerant engine is
    ``None``; summary cells derived from it render as ``(missing)``.
    """

    dataset: str
    model: str
    densities: Tuple[float, ...]
    fault_free_curve: Optional[List[float]]
    fault_unaware_curves: Dict[float, Optional[List[float]]]
    fare_curves: Dict[float, Optional[List[float]]]

    def final_gap(self, panel: str, density: float) -> Optional[float]:
        """Final-epoch training-accuracy gap to the fault-free curve."""
        curves = self.fault_unaware_curves if panel == "fault_unaware" else self.fare_curves
        curve = curves[density]
        if self.fault_free_curve is None or curve is None:
            return None
        return self.fault_free_curve[-1] - curve[-1]

    def rows(self) -> List[List]:
        """Final-epoch summary rows (see :data:`FIG4_SUMMARY_HEADERS`).

        The per-epoch curves stay in :func:`format_fig4`; these rows are the
        seed-aggregatable form used for mean±std error bars.
        """
        reference_final = (
            None if self.fault_free_curve is None else self.fault_free_curve[-1]
        )
        rows: List[List] = [
            ["fault-free", "-", reference_final, None if reference_final is None else 0.0]
        ]
        for panel, curves in (
            ("fault_unaware", self.fault_unaware_curves),
            ("fare", self.fare_curves),
        ):
            for density in self.densities:
                curve = curves[density]
                rows.append(
                    [
                        panel,
                        f"{density:.0%}",
                        None if curve is None else curve[-1],
                        self.final_gap(panel, density),
                    ]
                )
        return rows


def _fig4_specs(
    dataset: str,
    model: str,
    densities: Sequence[float],
    sa_ratio: Tuple[float, float],
    scale: str,
    seed: int,
    epochs: Optional[int],
) -> Dict[Tuple[str, float], RunSpec]:
    """Specs keyed by (strategy, density); the reference keys on density 0."""
    specs: Dict[Tuple[str, float], RunSpec] = {
        ("fault_free", 0.0): RunSpec.make(
            dataset, model, "fault_free", 0.0, scale=scale, seed=seed, epochs=epochs
        )
    }
    for density in densities:
        for strategy in ("fault_unaware", "fare"):
            specs[(strategy, density)] = RunSpec.make(
                dataset,
                model,
                strategy,
                density,
                sa_ratio=sa_ratio,
                scale=scale,
                seed=seed,
                epochs=epochs,
            )
    return specs


def plan_fig4(
    dataset: str = "reddit",
    model: str = "gcn",
    densities: Tuple[float, ...] = FIG5_FAULT_DENSITIES,
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
) -> SweepPlan:
    """The Fig. 4 grid as a declarative plan."""
    return SweepPlan(
        _fig4_specs(dataset, model, densities, sa_ratio, scale, seed, epochs).values()
    )


def run_fig4(
    dataset: str = "reddit",
    model: str = "gcn",
    densities: Tuple[float, ...] = FIG5_FAULT_DENSITIES,
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
    engine: Optional[SweepEngine] = None,
) -> Fig4Result:
    """Regenerate both panels of Fig. 4."""
    if engine is None:
        engine = default_engine()
    specs = _fig4_specs(dataset, model, densities, sa_ratio, scale, seed, epochs)
    results = engine.run(SweepPlan(specs.values()))
    curve = lambda r: list(r.train_accuracy_history)  # noqa: E731
    return Fig4Result(
        dataset=dataset,
        model=model,
        densities=tuple(densities),
        fault_free_curve=results.value(specs[("fault_free", 0.0)], curve),
        fault_unaware_curves={
            density: results.value(specs[("fault_unaware", density)], curve)
            for density in densities
        },
        fare_curves={
            density: results.value(specs[("fare", density)], curve)
            for density in densities
        },
    )


def run_fig4_seeds(
    seeds: Sequence[int] = (0, 1, 2), **kwargs
) -> Dict[int, Fig4Result]:
    """Seed-replicated Fig. 4 (one engine pass over the union grid)."""
    return run_seed_replicates(plan_fig4, run_fig4, seeds, **kwargs)


def format_fig4(result: Fig4Result) -> str:
    """Render the per-epoch series as two tables (one per panel)."""
    headers = ["Epoch", "fault-free"] + [f"{d:.0%}" for d in result.densities]
    all_curves = [result.fault_free_curve]
    all_curves += [result.fault_unaware_curves[d] for d in result.densities]
    all_curves += [result.fare_curves[d] for d in result.densities]
    n_epochs = max((len(c) for c in all_curves if c is not None), default=0)
    blocks = []
    for panel, curves in (
        ("(a) fault unaware", result.fault_unaware_curves),
        ("(b) FARe", result.fare_curves),
    ):
        rows = []
        for epoch in range(n_epochs):
            reference = result.fault_free_curve
            row = [epoch + 1, None if reference is None else reference[epoch]]
            for density in result.densities:
                curve = curves[density]
                row.append(None if curve is None else curve[epoch])
            rows.append(row)
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Fig. 4{panel} — {result.dataset} ({result.model.upper()}) training accuracy",
            )
        )
    return "\n\n".join(blocks)
