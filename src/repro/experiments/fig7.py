"""Fig. 7 — normalised execution time of the fault-tolerant approaches.

The paper reports end-to-end training time (normalised to fault-free
training) for NR, weight clipping and FARe on four dataset/model pairs.  The
numbers come from the pipelined-execution timing model: the paper's values are
derived from NeuroSim latencies, ours from the analytical
:class:`~repro.hardware.energy.TileCostModel`, evaluated at *paper scale*
(Table II partition/batch counts, 1024 hidden units) — no training runs are
needed, only the workload counts.

Expected shape: clipping ≈ 1.00×, FARe ≈ 1.01×, NR ≈ 2.5-4.5×.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.strategies import build_strategy
from repro.experiments.configs import strategy_kwargs_for
from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig
from repro.hardware.energy import TileCostModel
from repro.pipeline.timing import (
    estimate_execution_time,
    fig7_paper_datasets,
    timing_inputs_from_spec,
)
from repro.utils.tabulate import format_table

#: Strategies shown in Fig. 7, in presentation order.
FIG7_STRATEGIES: Tuple[str, ...] = ("fault_free", "nr", "clipping", "fare")

#: Column headers matching :meth:`Fig7Result.rows` (shared with the
#: ``python -m repro.experiments`` CLI).  Fig. 7 is the one figure that needs
#: no training sweep: it is fully analytical and seed-independent, so the CLI
#: runs it once regardless of the requested seed axis.
FIG7_HEADERS: Tuple[str, ...] = ("Workload",) + FIG7_STRATEGIES


@dataclass
class Fig7Result:
    """Normalised execution times keyed by (workload label, strategy)."""

    normalized: Dict[Tuple[str, str], float] = field(default_factory=dict)
    absolute_seconds: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def time(self, workload: str, strategy: str) -> float:
        return self.normalized[(workload, strategy)]

    def speedup_over_nr(self, workload: str) -> float:
        """FARe speed-up relative to the NR baseline (paper: up to 4×)."""
        return self.normalized[(workload, "nr")] / self.normalized[(workload, "fare")]

    def rows(self) -> List[List]:
        workloads = sorted({w for w, _ in self.normalized})
        rows = []
        for workload in workloads:
            row = [workload]
            for strategy in FIG7_STRATEGIES:
                row.append(self.normalized[(workload, strategy)])
            rows.append(row)
        return rows


def run_fig7(
    hidden_features: int = 1024,
    epochs: int = 100,
    config: ReRAMConfig = DEFAULT_CONFIG,
    strategies: Sequence[str] = FIG7_STRATEGIES,
    track_post_deployment: bool = False,
) -> Fig7Result:
    """Regenerate Fig. 7 from the analytical timing model at paper scale."""
    cost_model = TileCostModel(config=config)
    result = Fig7Result()
    for label, spec in fig7_paper_datasets().items():
        inputs = timing_inputs_from_spec(
            spec,
            hidden_features=hidden_features,
            epochs=epochs,
            config=config,
            track_post_deployment=track_post_deployment,
        )
        baseline = None
        for strategy_name in strategies:
            strategy = build_strategy(
                strategy_name, **strategy_kwargs_for(strategy_name, "paper")
            )
            breakdown = estimate_execution_time(
                strategy, inputs, cost_model=cost_model, config=config
            )
            if strategy_name == "fault_free":
                baseline = breakdown
            result.absolute_seconds[(label, strategy_name)] = breakdown.total
            result.normalized[(label, strategy_name)] = (
                breakdown.normalized(baseline) if baseline is not None else 1.0
            )
    return result


def format_fig7(result: Fig7Result) -> str:
    headers = list(FIG7_HEADERS)
    return format_table(
        headers,
        result.rows(),
        float_fmt=".3f",
        title="Fig. 7 — execution time normalised to fault-free training",
    )
