"""Headline claims of the paper, computed from the figure drivers.

The abstract/introduction quote four numbers:

1. FARe restores test accuracy by **47.6 %** on faulty hardware (Reddit, 1:1
   ratio) relative to fault-unaware training.
2. FARe's accuracy loss versus fault-free training is **< 1 %** (9:1) and
   about **1.1 %** (1:1) at fault densities up to 5 %.
3. FARe's timing overhead is about **1 %** of fault-free training.
4. FARe is up to **4×** faster than the NR baseline.

:func:`run_headline` recomputes all four from the same drivers that produce
Fig. 5 and Fig. 7 and returns them side by side with the paper's figures so
EXPERIMENTS.md can report paper-vs-measured directly.  The two Fig. 5 panels
it needs are one combined :class:`~repro.experiments.sweeps.SweepPlan`
(:func:`plan_headline`): the sweep engine de-duplicates the shared fault-free
baseline and reuses each panel's preprocessing artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.configs import SA_RATIO_1_1, SA_RATIO_9_1
from repro.experiments.fig5 import plan_fig5, run_fig5
from repro.experiments.fig7 import run_fig7
from repro.experiments.sweeps import SweepEngine, SweepPlan, run_seed_replicates
from repro.utils.tabulate import format_table

#: The single workload the headline numbers are quoted for.
HEADLINE_PAIR = (("reddit", "gcn"),)

#: Column headers matching :meth:`HeadlineResult.rows` (shared with the CLI).
HEADLINE_HEADERS = ("Claim", "Paper", "Measured", "Unit")


@dataclass(frozen=True)
class HeadlineClaim:
    """One paper claim with the measured counterpart.

    ``measured_value`` is ``None`` (rendered ``(missing)``) when a spec the
    claim depends on was quarantined by the fault-tolerant engine.
    """

    name: str
    paper_value: float
    measured_value: Optional[float]
    unit: str

    def row(self) -> List:
        return [self.name, self.paper_value, self.measured_value, self.unit]


@dataclass
class HeadlineResult:
    claims: List[HeadlineClaim]

    def claim(self, name: str) -> HeadlineClaim:
        for claim in self.claims:
            if claim.name == name:
                return claim
        raise KeyError(f"no headline claim named {name!r}")

    def rows(self) -> List[List]:
        return [claim.row() for claim in self.claims]


def plan_headline(
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
    density: float = 0.05,
) -> SweepPlan:
    """Both Fig. 5 panels of the headline workload as one plan."""
    panel_kwargs = dict(
        densities=(density,), pairs=HEADLINE_PAIR, scale=scale, seed=seed, epochs=epochs
    )
    return plan_fig5(sa_ratio=SA_RATIO_1_1, **panel_kwargs) + plan_fig5(
        sa_ratio=SA_RATIO_9_1, **panel_kwargs
    )


def run_headline(
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
    density: float = 0.05,
    engine: Optional[SweepEngine] = None,
) -> HeadlineResult:
    """Recompute the paper's headline numbers at the requested scale."""
    panel_kwargs = dict(
        densities=(density,),
        pairs=HEADLINE_PAIR,
        scale=scale,
        seed=seed,
        epochs=epochs,
        engine=engine,
    )
    panel_b = run_fig5(sa_ratio=SA_RATIO_1_1, **panel_kwargs)
    panel_a = run_fig5(sa_ratio=SA_RATIO_9_1, **panel_kwargs)
    fig7 = run_fig7()

    fare_1_1 = panel_b.accuracy("reddit", "gcn", density, "fare")
    unaware_1_1 = panel_b.accuracy("reddit", "gcn", density, "fault_unaware")
    restoration = (
        None if fare_1_1 is None or unaware_1_1 is None else fare_1_1 - unaware_1_1
    )
    drop_9_1 = panel_a.accuracy_drop("reddit", "gcn", density, "fare")
    drop_1_1 = panel_b.accuracy_drop("reddit", "gcn", density, "fare")
    fare_overhead = (
        max(fig7.time(workload, "fare") for workload, _ in fig7.normalized) - 1.0
    )
    best_speedup = max(
        fig7.speedup_over_nr(workload)
        for workload in {w for w, _ in fig7.normalized}
    )

    maybe_float = lambda v: None if v is None else float(v)  # noqa: E731
    claims = [
        HeadlineClaim(
            name="accuracy_restoration_reddit_1to1",
            paper_value=0.476,
            measured_value=maybe_float(restoration),
            unit="accuracy points",
        ),
        HeadlineClaim(
            name="fare_accuracy_drop_9to1",
            paper_value=0.01,
            measured_value=maybe_float(drop_9_1),
            unit="accuracy points (upper bound)",
        ),
        HeadlineClaim(
            name="fare_accuracy_drop_1to1",
            paper_value=0.011,
            measured_value=maybe_float(drop_1_1),
            unit="accuracy points (upper bound)",
        ),
        HeadlineClaim(
            name="fare_timing_overhead",
            paper_value=0.01,
            measured_value=float(fare_overhead),
            unit="fraction of fault-free time",
        ),
        HeadlineClaim(
            name="fare_speedup_over_nr",
            paper_value=4.0,
            measured_value=float(best_speedup),
            unit="x (up to)",
        ),
    ]
    return HeadlineResult(claims=claims)


def run_headline_seeds(
    seeds: Sequence[int] = (0, 1, 2), **kwargs
) -> Dict[int, HeadlineResult]:
    """Seed-replicated headline numbers (one engine pass over the union grid)."""
    return run_seed_replicates(plan_headline, run_headline, seeds, **kwargs)


def format_headline(result: HeadlineResult) -> str:
    return format_table(
        list(HEADLINE_HEADERS),
        result.rows(),
        float_fmt=".3f",
        title="Headline claims — paper vs measured",
    )
