"""Fig. 5 — test-accuracy comparison of all strategies.

Six dataset/model pairs × three fault densities × five strategies
(fault-free, fault-unaware, NR, weight clipping, FARe) for the 9:1 (panel a)
and 1:1 (panel b) SA0:SA1 ratios.  The expected shape:

* fault-unaware loses the most accuracy,
* NR and clipping-only recover part of it,
* FARe stays within ~1 % (9:1) / ~1.1 % (1:1) of the fault-free accuracy,
* every method's drop is larger under the 1:1 ratio (more SA1 faults).

The full (workload × density × strategy) grid is one
:class:`~repro.experiments.sweeps.SweepPlan` (:func:`plan_fig5`): the engine
de-duplicates the fault-free baselines across panels and shares preprocessing
and mapping plans across strategies and models of the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.configs import (
    COMPARED_STRATEGIES,
    FIG5_FAULT_DENSITIES,
    FIG5_PAIRS,
    SA_RATIO_1_1,
    SA_RATIO_9_1,
)
from repro.experiments.sweeps import (
    RunSpec,
    SweepEngine,
    SweepPlan,
    default_engine,
    run_seed_replicates,
)
from repro.utils.tabulate import format_table

#: Column headers matching :meth:`Fig5Result.rows` (shared with the CLI).
FIG5_HEADERS: Tuple[str, ...] = ("Workload", "Density") + tuple(COMPARED_STRATEGIES)


@dataclass
class Fig5Result:
    """Test accuracies keyed by (dataset, model, density, strategy).

    Quarantined cells hold ``None`` (rendered ``(missing)``); drops derived
    from a missing cell are ``None`` too.
    """

    sa_ratio: Tuple[float, float]
    densities: Tuple[float, ...]
    pairs: Tuple[Tuple[str, str], ...]
    accuracies: Dict[Tuple[str, str, float, str], Optional[float]] = field(
        default_factory=dict
    )

    def accuracy(
        self, dataset: str, model: str, density: float, strategy: str
    ) -> Optional[float]:
        return self.accuracies[(dataset, model, density, strategy)]

    def accuracy_drop(
        self, dataset: str, model: str, density: float, strategy: str
    ) -> Optional[float]:
        """Accuracy drop of ``strategy`` relative to fault-free."""
        baseline = self.accuracies[(dataset, model, density, "fault_free")]
        measured = self.accuracies[(dataset, model, density, strategy)]
        if baseline is None or measured is None:
            return None
        return baseline - measured

    def rows(self) -> List[List]:
        rows = []
        for dataset, model in self.pairs:
            for density in self.densities:
                row = [f"{dataset} ({model.upper()})", f"{density:.0%}"]
                for strategy in COMPARED_STRATEGIES:
                    row.append(self.accuracies[(dataset, model, density, strategy)])
                rows.append(row)
        return rows


def _fig5_specs(
    sa_ratio: Tuple[float, float],
    densities: Sequence[float],
    pairs: Sequence[Tuple[str, str]],
    strategies: Sequence[str],
    scale: str,
    seed: int,
    epochs: Optional[int],
) -> Dict[Tuple[str, str, float, str], RunSpec]:
    """Specs keyed by the figure's (dataset, model, density, strategy) cell."""
    specs: Dict[Tuple[str, str, float, str], RunSpec] = {}
    for dataset, model in pairs:
        for density in densities:
            for strategy in strategies:
                effective_density = 0.0 if strategy == "fault_free" else density
                specs[(dataset, model, density, strategy)] = RunSpec.make(
                    dataset,
                    model,
                    strategy,
                    effective_density,
                    sa_ratio=sa_ratio,
                    scale=scale,
                    seed=seed,
                    epochs=epochs,
                )
    return specs


def plan_fig5(
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    densities: Sequence[float] = FIG5_FAULT_DENSITIES,
    pairs: Sequence[Tuple[str, str]] = FIG5_PAIRS,
    strategies: Sequence[str] = COMPARED_STRATEGIES,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
) -> SweepPlan:
    """One panel of Fig. 5 as a declarative plan."""
    return SweepPlan(
        _fig5_specs(
            sa_ratio, densities, pairs, strategies, scale, seed, epochs
        ).values()
    )


def run_fig5(
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    densities: Sequence[float] = FIG5_FAULT_DENSITIES,
    pairs: Sequence[Tuple[str, str]] = FIG5_PAIRS,
    strategies: Sequence[str] = COMPARED_STRATEGIES,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
    engine: Optional[SweepEngine] = None,
) -> Fig5Result:
    """Regenerate one panel of Fig. 5 (choose the panel via ``sa_ratio``)."""
    if engine is None:
        engine = default_engine()
    specs = _fig5_specs(sa_ratio, densities, pairs, strategies, scale, seed, epochs)
    results = engine.run(SweepPlan(specs.values()))
    result = Fig5Result(
        sa_ratio=tuple(sa_ratio),
        densities=tuple(densities),
        pairs=tuple(tuple(p) for p in pairs),
    )
    for cell, spec in specs.items():
        result.accuracies[cell] = results.value(spec, lambda r: r.final_test_accuracy)
    return result


def run_fig5_seeds(
    seeds: Sequence[int] = (0, 1, 2), **kwargs
) -> Dict[int, Fig5Result]:
    """Seed-replicated Fig. 5 panel (one engine pass over the union grid)."""
    return run_seed_replicates(plan_fig5, run_fig5, seeds, **kwargs)


def run_fig5a(**kwargs) -> Fig5Result:
    """Panel (a): SA0:SA1 = 9:1."""
    return run_fig5(sa_ratio=SA_RATIO_9_1, **kwargs)


def run_fig5b(**kwargs) -> Fig5Result:
    """Panel (b): SA0:SA1 = 1:1."""
    return run_fig5(sa_ratio=SA_RATIO_1_1, **kwargs)


def format_fig5(result: Fig5Result) -> str:
    ratio = f"{result.sa_ratio[0]:.0f}:{result.sa_ratio[1]:.0f}"
    return format_table(
        list(FIG5_HEADERS),
        result.rows(),
        title=f"Fig. 5 — test accuracy, SA0:SA1 = {ratio}",
    )
