"""Fig. 5 — test-accuracy comparison of all strategies.

Six dataset/model pairs × three fault densities × five strategies
(fault-free, fault-unaware, NR, weight clipping, FARe) for the 9:1 (panel a)
and 1:1 (panel b) SA0:SA1 ratios.  The expected shape:

* fault-unaware loses the most accuracy,
* NR and clipping-only recover part of it,
* FARe stays within ~1 % (9:1) / ~1.1 % (1:1) of the fault-free accuracy,
* every method's drop is larger under the 1:1 ratio (more SA1 faults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.configs import (
    COMPARED_STRATEGIES,
    FIG5_FAULT_DENSITIES,
    FIG5_PAIRS,
    SA_RATIO_1_1,
    SA_RATIO_9_1,
)
from repro.experiments.runner import run_single
from repro.utils.tabulate import format_table


@dataclass
class Fig5Result:
    """Test accuracies keyed by (dataset, model, density, strategy)."""

    sa_ratio: Tuple[float, float]
    densities: Tuple[float, ...]
    pairs: Tuple[Tuple[str, str], ...]
    accuracies: Dict[Tuple[str, str, float, str], float] = field(default_factory=dict)

    def accuracy(self, dataset: str, model: str, density: float, strategy: str) -> float:
        return self.accuracies[(dataset, model, density, strategy)]

    def accuracy_drop(self, dataset: str, model: str, density: float, strategy: str) -> float:
        """Accuracy drop of ``strategy`` relative to fault-free."""
        baseline = self.accuracies[(dataset, model, density, "fault_free")]
        return baseline - self.accuracies[(dataset, model, density, strategy)]

    def rows(self) -> List[List]:
        rows = []
        for dataset, model in self.pairs:
            for density in self.densities:
                row = [f"{dataset} ({model.upper()})", f"{density:.0%}"]
                for strategy in COMPARED_STRATEGIES:
                    row.append(self.accuracies[(dataset, model, density, strategy)])
                rows.append(row)
        return rows


def run_fig5(
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    densities: Sequence[float] = FIG5_FAULT_DENSITIES,
    pairs: Sequence[Tuple[str, str]] = FIG5_PAIRS,
    strategies: Sequence[str] = COMPARED_STRATEGIES,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
) -> Fig5Result:
    """Regenerate one panel of Fig. 5 (choose the panel via ``sa_ratio``)."""
    result = Fig5Result(
        sa_ratio=tuple(sa_ratio),
        densities=tuple(densities),
        pairs=tuple(tuple(p) for p in pairs),
    )
    for dataset, model in result.pairs:
        for density in result.densities:
            for strategy in strategies:
                effective_density = 0.0 if strategy == "fault_free" else density
                run = run_single(
                    dataset,
                    model,
                    strategy,
                    effective_density,
                    sa_ratio=sa_ratio,
                    scale=scale,
                    seed=seed,
                    epochs=epochs,
                )
                result.accuracies[(dataset, model, density, strategy)] = (
                    run.final_test_accuracy
                )
    return result


def run_fig5a(**kwargs) -> Fig5Result:
    """Panel (a): SA0:SA1 = 9:1."""
    return run_fig5(sa_ratio=SA_RATIO_9_1, **kwargs)


def run_fig5b(**kwargs) -> Fig5Result:
    """Panel (b): SA0:SA1 = 1:1."""
    return run_fig5(sa_ratio=SA_RATIO_1_1, **kwargs)


def format_fig5(result: Fig5Result) -> str:
    ratio = f"{result.sa_ratio[0]:.0f}:{result.sa_ratio[1]:.0f}"
    headers = ["Workload", "Density"] + [s for s in COMPARED_STRATEGIES]
    return format_table(
        headers,
        result.rows(),
        title=f"Fig. 5 — test accuracy, SA0:SA1 = {ratio}",
    )
