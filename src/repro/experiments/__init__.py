"""Experiment drivers regenerating every table and figure of the paper.

Each ``figN``/``table`` module declares its grid as a
:class:`~repro.experiments.sweeps.SweepPlan` and exposes a ``run_*`` function
returning plain data structures (lists of row tuples or dicts of series), a
``run_*_seeds`` variant for seed-replicated results with error bars, and a
``format_*`` helper that renders the same rows the paper reports.  Plans
execute through the :class:`~repro.experiments.sweeps.SweepEngine` (shared
preprocessing artifacts, optional process parallelism, optional on-disk
result store); ``python -m repro.experiments`` runs any figure from the
command line.  The benchmark harness under ``benchmarks/`` calls these
drivers one-to-one, and ``EXPERIMENTS.md`` records the measured numbers next
to the paper's.
"""

from repro.experiments import configs, lifetime, runner, sweeps, tables
from repro.experiments import fig3, fig4, fig5, fig6, fig7, headline

__all__ = [
    "configs",
    "lifetime",
    "runner",
    "sweeps",
    "tables",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "headline",
]
