"""Experiment drivers regenerating every table and figure of the paper.

Each ``figN``/``table`` module exposes a ``run_*`` function returning plain
data structures (lists of row tuples or dicts of series) plus a ``format_*``
helper that renders the same rows the paper reports.  The benchmark harness
under ``benchmarks/`` calls these drivers one-to-one, and ``EXPERIMENTS.md``
records the measured numbers next to the paper's.
"""

from repro.experiments import configs, runner, tables
from repro.experiments import fig3, fig4, fig5, fig6, fig7, headline

__all__ = [
    "configs",
    "runner",
    "tables",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "headline",
]
