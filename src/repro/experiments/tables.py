"""Tables I–III of the paper, plus seed-replication aggregation helpers.

* **Table I** — qualitative comparison of existing fault-tolerant techniques;
  static content reproduced verbatim (it encodes the paper's motivation).
* **Table II** — dataset statistics and training hyperparameters; both the
  paper's numbers and the synthetic surrogate's actual statistics are
  reported so the substitution is transparent.
* **Table III** — the ReRAM tile specification, generated from
  :class:`~repro.hardware.config.ReRAMConfig` so the simulated architecture
  and the documented one cannot drift apart.

:func:`aggregate_seed_rows` / :func:`format_seed_table` turn the per-seed
``rows()`` of any figure driver (see ``run_fig*_seeds`` and the
``python -m repro.experiments`` CLI) into one mean±std table — the error-bar
form of the paper's accuracy grids.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.experiments import configs
from repro.graph.datasets import DATASET_REGISTRY, load_dataset
from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig
from repro.utils.tabulate import format_table

TABLE1_HEADERS = [
    "Ref.",
    "Training",
    "Performance Overhead",
    "Combination/Aggregation",
    "Mitigates Post-deployment Faults",
]

#: Rows of Table I (reference tag, training support, overhead, phases, post-deployment).
TABLE1_ROWS: List[List[str]] = [
    ["[8] redundant columns", "Y", "HIGH", "Y / Y", "Y"],
    ["[10] weight pruning", "N", "LOW", "Y / N", "N"],
    ["[11] stochastic retraining", "N", "LOW", "Y / Y", "N"],
    ["[9] fault-free compensation", "N", "HIGH", "Y / N", "N"],
    ["[12] weight clipping", "Y", "LOW", "Y / N", "Y"],
    ["[7] neuron reordering", "Y", "HIGH", "Y / Y", "Y"],
    ["FARe (this work)", "Y", "LOW", "Y / Y", "Y"],
]


def table1_rows() -> List[List[str]]:
    """Return the rows of Table I (including the FARe row)."""
    return [list(row) for row in TABLE1_ROWS]


def format_table1() -> str:
    return format_table(TABLE1_HEADERS, table1_rows(), title="Table I — existing techniques")


# --------------------------------------------------------------------------- #
TABLE2_HEADERS = [
    "Dataset",
    "# Nodes (paper)",
    "# Edges (paper)",
    "Batch",
    "Partitions",
    "GNN models",
    "# Nodes (surrogate)",
    "# Edges (surrogate)",
    "lr",
    "epochs",
]


def table2_rows(scale: str = "ci", seed: int = 0, include_surrogate_stats: bool = True) -> List[List]:
    """Rows of Table II: paper statistics next to the surrogate's actual ones."""
    settings = configs.scale_settings(scale)
    rows: List[List] = []
    for name, spec in DATASET_REGISTRY.items():
        if include_surrogate_stats:
            graph = load_dataset(name, scale=scale, seed=seed)
            surrogate_nodes = graph.num_nodes
            surrogate_edges = graph.num_edges // 2
        else:
            surrogate_nodes = spec.nodes_for_scale(scale)
            surrogate_edges = int(spec.nodes_for_scale(scale) * spec.avg_degree / 2)
        rows.append(
            [
                name,
                spec.paper_nodes,
                spec.paper_edges,
                spec.paper_batch,
                spec.paper_partitions,
                "/".join(m.upper() for m in spec.models),
                surrogate_nodes,
                surrogate_edges,
                0.01,
                settings.epochs,
            ]
        )
    return rows


def format_table2(scale: str = "ci", seed: int = 0) -> str:
    return format_table(
        TABLE2_HEADERS,
        table2_rows(scale=scale, seed=seed),
        float_fmt=".2f",
        title="Table II — datasets and GNN workload configuration",
    )


# --------------------------------------------------------------------------- #
# Seed replication: mean ± std aggregation
# --------------------------------------------------------------------------- #
def mean_std(values: Sequence[float], float_fmt: str = ".4f") -> str:
    """Render seed replicates as ``mean ± std`` (population std, ddof=0).

    Seed-invariant cells (a single replicate, or all replicates equal — e.g.
    a paper reference constant) render as the bare value: an error bar of
    ``± 0.0000`` would misrepresent a constant as a measurement.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("mean_std needs at least one value")
    if data.size == 1 or np.all(data == data[0]):
        return f"{data[0]:{float_fmt}}"
    return f"{data.mean():{float_fmt}} ± {data.std():{float_fmt}}"


def aggregate_seed_rows(
    rows_per_seed: Sequence[List[List]], float_fmt: str = ".4f"
) -> List[List]:
    """Element-wise mean±std over per-seed copies of a figure's ``rows()``.

    Every seed must produce the same table shape with identical non-numeric
    cells (the workload/density labels); numeric cells are replaced by their
    ``mean ± std`` string across seeds.  ``None`` cells — a quarantined spec
    under fault-tolerant execution leaves a hole in one seed's grid — are
    tolerated: a column with every seed missing aggregates to ``None``
    (rendered ``(missing)``); a partially-missing column averages the
    surviving replicates and appends a ``[k/N seeds]`` marker so the thinner
    error bar is never mistaken for a full replication.
    """
    if not rows_per_seed:
        raise ValueError("aggregate_seed_rows needs at least one seed's rows")
    shapes = {tuple(len(row) for row in rows) for rows in rows_per_seed}
    if len(shapes) != 1:
        raise ValueError(f"per-seed tables disagree in shape: {sorted(shapes)}")
    aggregated: List[List] = []
    for row_cells in zip(*rows_per_seed):
        row: List = []
        for cells in zip(*row_cells):
            present = [c for c in cells if c is not None]
            if not present:
                row.append(None)
                continue
            first = present[0]
            if isinstance(first, (int, float, np.integer, np.floating)) and not isinstance(
                first, bool
            ):
                rendered = mean_std([float(c) for c in present], float_fmt=float_fmt)
                if len(present) < len(cells):
                    rendered += f" [{len(present)}/{len(cells)} seeds]"
                row.append(rendered)
            else:
                if any(c != first for c in present[1:]):
                    raise ValueError(
                        f"non-numeric cells differ across seeds: {cells!r}"
                    )
                row.append(first)
        aggregated.append(row)
    return aggregated


def format_seed_table(
    headers: Sequence[str],
    rows_per_seed: Sequence[List[List]],
    seeds: Sequence[int],
    title: str,
    float_fmt: str = ".4f",
) -> str:
    """Render per-seed figure rows as one mean±std table."""
    seed_list = ", ".join(str(s) for s in seeds)
    return format_table(
        list(headers),
        aggregate_seed_rows(rows_per_seed, float_fmt=float_fmt),
        title=f"{title} — mean ± std over seeds {{{seed_list}}}",
    )


# --------------------------------------------------------------------------- #
TABLE3_HEADERS = ["Component", "Specification"]


def table3_rows(config: ReRAMConfig = DEFAULT_CONFIG) -> List[Sequence[str]]:
    """Rows of Table III generated from the architecture configuration."""
    return [[key, value] for key, value in config.describe().items()]


def format_table3(config: ReRAMConfig = DEFAULT_CONFIG) -> str:
    return format_table(
        TABLE3_HEADERS,
        table3_rows(config),
        title="Table III — ReRAM-PIM architecture specification",
    )
