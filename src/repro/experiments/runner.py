"""Shared experiment runner.

:func:`run_single` is the single entry point every figure driver (and the
public API) uses: it builds the synthetic dataset, the hardware environment
with injected faults, the strategy, and the trainer — then runs training and
returns the :class:`~repro.pipeline.trainer.TrainingResult`.

Results are memoised in-process keyed by every argument that affects the
outcome, so fault-free baselines and repeated configurations (shared between
Fig. 4/5/6 and the headline numbers) are only trained once per session.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.strategies import build_strategy
from repro.experiments import configs
from repro.graph.datasets import load_dataset
from repro.hardware.endurance import PostDeploymentSchedule
from repro.hardware.faults import FaultModel
from repro.hardware.quantization import FixedPointFormat
from repro.pipeline.mapping_engine import HardwareEnvironment
from repro.pipeline.trainer import FaultyTrainer, TrainingResult
from repro.utils.logging import get_logger

logger = get_logger("experiments.runner")

#: In-process result cache (keyed by the full run signature).
_RESULT_CACHE: Dict[Tuple, TrainingResult] = {}


def clear_cache() -> None:
    """Drop all memoised results (used by tests)."""
    _RESULT_CACHE.clear()


def cache_size() -> int:
    """Number of memoised training runs."""
    return len(_RESULT_CACHE)


def build_hardware(
    scale: str,
    fault_density: float,
    sa_ratio: Tuple[float, float],
    seed: int,
    fault_region: str = "both",
) -> HardwareEnvironment:
    """Create a :class:`HardwareEnvironment` with injected pre-deployment faults.

    Parameters
    ----------
    fault_region:
        ``'both'`` (default) injects faults everywhere; ``'weights'`` or
        ``'adjacency'`` clears the fault maps of the other region — used by
        the Fig. 3 per-phase sensitivity study.
    """
    if fault_region not in ("both", "weights", "adjacency"):
        raise ValueError(
            f"fault_region must be 'both', 'weights' or 'adjacency', got {fault_region!r}"
        )
    settings = configs.scale_settings(scale)
    hw_config = configs.hardware_config(scale)
    fault_model = (
        FaultModel(fault_density, sa0_sa1_ratio=sa_ratio, seed=seed)
        if fault_density > 0
        else None
    )
    hardware = HardwareEnvironment(
        config=hw_config,
        fault_model=fault_model,
        weight_fraction=settings.weight_fraction,
        fmt=FixedPointFormat(
            total_bits=hw_config.weight_bits,
            max_value=settings.weight_max_value,
            bits_per_cell=hw_config.bits_per_cell,
        ),
        num_crossbars=settings.num_crossbars,
    )
    if fault_region != "both":
        from repro.hardware.faults import FaultMap

        cleared = (
            hardware.adjacency_crossbars
            if fault_region == "weights"
            else hardware.weight_crossbars
        )
        for crossbar in cleared:
            crossbar.set_fault_map(FaultMap.empty(crossbar.rows, crossbar.cols))
    return hardware


def run_single(
    dataset: str,
    model: str,
    strategy_name: str,
    fault_density: float,
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    scale: str = "ci",
    seed: int = 0,
    epochs: Optional[int] = None,
    post_deployment_extra: Optional[float] = None,
    fault_region: str = "both",
    strategy_kwargs: Optional[Dict] = None,
    use_cache: bool = True,
) -> TrainingResult:
    """Train one configuration and return its result (memoised)."""
    strategy_kwargs = strategy_kwargs or configs.strategy_kwargs_for(strategy_name, scale)
    cache_key = (
        dataset,
        model,
        strategy_name,
        round(float(fault_density), 6),
        tuple(float(x) for x in sa_ratio),
        scale,
        int(seed),
        epochs,
        post_deployment_extra,
        fault_region,
        tuple(sorted(strategy_kwargs.items())),
    )
    if use_cache and cache_key in _RESULT_CACHE:
        return _RESULT_CACHE[cache_key]

    graph = load_dataset(dataset, scale=scale, seed=seed)
    training_config = configs.training_config(dataset, scale, seed=seed, epochs=epochs)
    strategy = build_strategy(strategy_name, **strategy_kwargs)

    hardware = None
    post_deployment = None
    if strategy.requires_hardware:
        hardware = build_hardware(
            scale, fault_density, sa_ratio, seed=seed, fault_region=fault_region
        )
        if post_deployment_extra:
            post_deployment = PostDeploymentSchedule(
                total_extra_density=post_deployment_extra,
                num_epochs=training_config.epochs,
            )

    trainer = FaultyTrainer(
        graph=graph,
        model_name=model,
        strategy=strategy,
        config=training_config,
        hardware=hardware,
        post_deployment=post_deployment,
    )
    logger.info(
        "training %s/%s strategy=%s density=%.3f ratio=%s scale=%s",
        dataset,
        model,
        strategy_name,
        fault_density,
        sa_ratio,
        scale,
    )
    result = trainer.train()
    if use_cache:
        _RESULT_CACHE[cache_key] = result
    return result
