"""Shared experiment runner — compatibility shim over the sweep engine.

:func:`run_single` is the historical single-run entry point every figure
driver (and the public API) used.  Since the declarative sweep refactor it is
a thin wrapper that builds one canonical
:class:`~repro.experiments.sweeps.RunSpec` and executes it through the
module-level :class:`~repro.experiments.sweeps.SweepEngine`
(:data:`DEFAULT_ENGINE`) — the same engine the figure drivers hand their
:class:`~repro.experiments.sweeps.SweepPlan` grids to, so ad-hoc
``run_single`` calls and declarative sweeps share one LRU-bounded result
memo and one artifact cache.

The engine keeps no on-disk store by default (session-only memoisation, like
the seed runner); pass a store-backed engine to the figure drivers or use
``python -m repro.experiments`` for cross-session persistence.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.sweeps import (
    RunSpec,
    SweepEngine,
    SweepPlan,
    build_hardware,
    execute_spec,
)
from repro.pipeline.trainer import TrainingResult

__all__ = [
    "DEFAULT_ENGINE",
    "build_hardware",
    "cache_size",
    "cache_stats",
    "clear_cache",
    "run_single",
]

#: Process-wide engine shared by ``run_single`` and the figure drivers:
#: LRU-capped result memo (the seed runner's unbounded in-process dict,
#: now bounded and instrumented) + shared preprocessing artifacts.
DEFAULT_ENGINE = SweepEngine(store=None, memo_capacity=256)


def clear_cache() -> None:
    """Drop all memoised results and shared artifacts (used by tests)."""
    DEFAULT_ENGINE.clear_memo()


def cache_size() -> int:
    """Number of memoised training runs."""
    return DEFAULT_ENGINE.memo_size()


def cache_stats() -> Dict[str, float]:
    """Hit/miss counters of the shared engine (memo + artifact caches)."""
    return DEFAULT_ENGINE.summary()


def run_single(
    dataset: str,
    model: str,
    strategy_name: str,
    fault_density: float,
    sa_ratio: Tuple[float, float] = (9.0, 1.0),
    scale: str = "ci",
    seed: int = 0,
    epochs: Optional[int] = None,
    post_deployment_extra: Optional[float] = None,
    fault_region: str = "both",
    strategy_kwargs: Optional[Dict] = None,
    use_cache: bool = True,
) -> TrainingResult:
    """Train one configuration and return its result (memoised).

    ``use_cache=False`` bypasses the engine entirely and rebuilds every input
    from scratch — the seed serial behaviour, kept as the reference path.
    """
    spec = RunSpec.make(
        dataset=dataset,
        model=model,
        strategy=strategy_name,
        fault_density=fault_density,
        sa_ratio=sa_ratio,
        scale=scale,
        seed=seed,
        epochs=epochs,
        post_deployment_extra=post_deployment_extra,
        fault_region=fault_region,
        strategy_kwargs=strategy_kwargs,
    )
    if not use_cache:
        return execute_spec(spec)
    return DEFAULT_ENGINE.run(SweepPlan([spec]))[spec]
