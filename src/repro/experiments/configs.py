"""Experiment configuration: scales, hardware setups, figure workloads.

Two scales are supported everywhere:

* ``'ci'`` — small synthetic graphs, narrow models, few epochs and 64×64
  crossbars so the complete benchmark suite runs in CPU-minutes.  This is the
  default for the automated harness.
* ``'paper'`` — the full surrogate sizes with the paper's 128×128 crossbars
  and 100 epochs (Table II), for users with more time.

The fault-density grid, SA0:SA1 ratios and dataset/model pairs of every
figure are defined here so the drivers and the documentation stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.datasets import DATASET_REGISTRY, DatasetSpec
from repro.hardware.config import ReRAMConfig
from repro.pipeline.trainer import TrainingConfig

#: Fault densities evaluated in Fig. 4/5 (1 %, 3 %, 5 %).
FIG5_FAULT_DENSITIES: Tuple[float, ...] = (0.01, 0.03, 0.05)

#: Pre-deployment densities of the post-deployment experiment (Fig. 6).
FIG6_FAULT_DENSITIES: Tuple[float, ...] = (0.01, 0.02, 0.03)

#: Extra post-deployment density injected across the epochs in Fig. 6.
FIG6_POST_DEPLOYMENT_EXTRA: float = 0.01

#: SA0:SA1 ratios evaluated (Fig. 5(a)/(b) and Fig. 6(a)/(b)).
SA_RATIO_9_1: Tuple[float, float] = (9.0, 1.0)
SA_RATIO_1_1: Tuple[float, float] = (1.0, 1.0)

#: Dataset/model pairs of Fig. 5 in presentation order.
FIG5_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("ppi", "gcn"),
    ("ppi", "gat"),
    ("reddit", "gcn"),
    ("ogbl", "sage"),
    ("amazon2m", "gcn"),
    ("amazon2m", "sage"),
)

#: Dataset/model pairs of Fig. 6 in presentation order.
FIG6_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("ppi", "gat"),
    ("reddit", "gcn"),
    ("amazon2m", "sage"),
)

#: Strategies compared in Fig. 5/6 in presentation order.
COMPARED_STRATEGIES: Tuple[str, ...] = (
    "fault_free",
    "fault_unaware",
    "nr",
    "clipping",
    "fare",
)


@dataclass(frozen=True)
class ScaleSettings:
    """Per-scale model/training/hardware settings."""

    epochs: int
    hidden_features: int
    dropout: float
    num_parts: int
    batch_clusters: int
    crossbar_size: int
    num_crossbars: int
    weight_fraction: float
    clipping_threshold: float
    sa1_weight: float
    row_method: str
    weight_max_value: float


_CI_SETTINGS = ScaleSettings(
    epochs=8,
    hidden_features=16,
    dropout=0.1,
    num_parts=12,
    batch_clusters=4,
    crossbar_size=64,
    num_crossbars=96,
    weight_fraction=0.35,
    # The clipping threshold is the paper's one hyperparameter; ~3x the Glorot
    # std of the narrow CI-scale models (see the clipping-threshold ablation).
    clipping_threshold=0.3,
    sa1_weight=4.0,
    row_method="greedy",
    weight_max_value=4.0,
)

_PAPER_SETTINGS = ScaleSettings(
    epochs=100,
    hidden_features=64,
    dropout=0.2,
    num_parts=24,
    batch_clusters=4,
    crossbar_size=128,
    num_crossbars=256,
    weight_fraction=0.35,
    clipping_threshold=0.5,
    sa1_weight=4.0,
    row_method="greedy",
    weight_max_value=4.0,
)

_SCALES: Dict[str, ScaleSettings] = {"ci": _CI_SETTINGS, "paper": _PAPER_SETTINGS}


def scale_settings(scale: str) -> ScaleSettings:
    """Return the settings for ``scale`` (``'ci'`` or ``'paper'``)."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(_SCALES)}")
    return _SCALES[scale]


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the dataset specification by paper name."""
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}")
    return DATASET_REGISTRY[key]


def training_config(dataset: str, scale: str, seed: int = 0, epochs: int = None) -> TrainingConfig:
    """Build the :class:`TrainingConfig` for one dataset at one scale."""
    settings = scale_settings(scale)
    spec = dataset_spec(dataset)
    num_parts = settings.num_parts
    # Slightly more partitions for the larger surrogates, mirroring Table II's
    # increasing partition counts.
    if spec.nodes_for_scale(scale) > 500:
        num_parts = int(settings.num_parts * 1.5)
    return TrainingConfig(
        epochs=epochs if epochs is not None else settings.epochs,
        learning_rate=0.01,
        hidden_features=settings.hidden_features,
        dropout=settings.dropout,
        optimizer="adam",
        num_parts=num_parts,
        batch_clusters=settings.batch_clusters,
        eval_every=1,
        seed=seed,
    )


def hardware_config(scale: str) -> ReRAMConfig:
    """ReRAM architecture configuration for ``scale``.

    The ``ci`` scale shrinks the crossbars to 64×64 and the pool to 96
    crossbars so Algorithm 1's matching problems stay small; the ``paper``
    scale uses the Table III geometry.
    """
    settings = scale_settings(scale)
    if scale == "paper":
        return ReRAMConfig()
    return ReRAMConfig(
        crossbar_rows=settings.crossbar_size,
        crossbar_cols=settings.crossbar_size,
        crossbars_per_tile=settings.num_crossbars // 4,
        num_tiles=4,
    )


def strategy_kwargs_for(strategy_name: str, scale: str) -> Dict[str, object]:
    """Default constructor arguments for each strategy at the given scale."""
    settings = scale_settings(scale)
    if strategy_name == "fare":
        return {
            "clipping_threshold": settings.clipping_threshold,
            "sa1_weight": settings.sa1_weight,
            "row_method": settings.row_method,
        }
    if strategy_name == "clipping":
        return {"threshold": settings.clipping_threshold}
    if strategy_name == "nr":
        return {"group_size": 8, "method": "greedy"}
    return {}


def fig5_pairs() -> List[Tuple[str, str]]:
    return list(FIG5_PAIRS)


def fig6_pairs() -> List[Tuple[str, str]]:
    return list(FIG6_PAIRS)
