"""Device-lifetime scenario: accuracy and remap cost vs write cycles.

The paper's post-deployment experiment (Fig. 6) injects a fixed 1 % extra
density over one training run.  This driver extends that axis to the device's
*lifetime*: an :class:`~repro.hardware.endurance.EnduranceModel` translates
cumulative write cycles into population fault density, a
:class:`~repro.hardware.endurance.WearOutSchedule` places checkpoints along
that curve, and at every checkpoint the accumulated fault delta is injected,
the BIST re-scans, and the FaRe mapping is **re-planned incrementally**
(:meth:`~repro.pipeline.trainer.FaultyTrainer.apply_fault_delta` with
``replan=True`` → delta-planning through the mapping stack).  Recorded per
checkpoint: test accuracy on the degraded hardware, plan cost/SA1 mismatch,
the delta-planning work counters, and re-plan wall time (optionally alongside
a from-scratch re-plan of the same maps for the speedup column).

The scenario only became tractable with incremental re-planning: a lifetime
sweep re-plans after every wear-out step, and from-scratch planning at every
checkpoint is exactly the cost wall ROADMAP item 1 describes.

Two drivers:

* :func:`run_lifetime` — train once at the base density, then walk the
  wear-out schedule (accuracy + cost curves).
* :func:`run_density_grid` — no training; walk a grid of cumulative fault
  densities, each level's plan delta-patched from the previous level's
  (the cross-density figure-grid mode; plan-cost curves only).

CLI: ``python -m repro.experiments lifetime`` (see ``--help``).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.strategies import FaReStrategy, build_strategy
from repro.experiments import configs
from repro.experiments.sweeps import build_hardware
from repro.graph.datasets import load_dataset
from repro.hardware.endurance import EnduranceModel, WearOutSchedule
from repro.hardware.faults import population_density
from repro.pipeline.trainer import FaultyTrainer
from repro.utils.logging import get_logger
from repro.utils.tabulate import format_table

logger = get_logger("experiments.lifetime")

#: Column headers matching :meth:`LifetimeResult.rows`.
LIFETIME_HEADERS: Tuple[str, ...] = (
    "Writes",
    "Density",
    "Test acc",
    "Plan cost",
    "SA1",
    "Maps Δ",
    "Pairs re-solved",
    "Pairs reused",
    "Warm hits",
    "Replan ms",
    "Cold ms",
)

#: Column headers matching :meth:`DensityGridResult.rows`.
DENSITY_GRID_HEADERS: Tuple[str, ...] = (
    "Density",
    "Plan cost",
    "SA1",
    "Maps Δ",
    "Pairs re-solved",
    "Pairs reused",
    "Warm hits",
    "Replan ms",
    "Cold ms",
)


@dataclass
class LifetimeCheckpoint:
    """Measurements taken after one wear-out step and incremental re-plan."""

    writes: float
    cumulative_density: float
    measured_density: float
    test_accuracy: float
    plan_cost: float
    plan_sa1_mismatch: float
    maps_changed: int
    pairs_resolved: int
    pairs_reused: int
    warm_hits: int
    warm_fallbacks: int
    replan_seconds: float
    cold_replan_seconds: Optional[float] = None


@dataclass
class LifetimeResult:
    """Accuracy/remap-cost-vs-write-cycles curve of one device lifetime."""

    dataset: str
    model: str
    row_method: str
    base_density: float
    base_test_accuracy: float
    checkpoints: List[LifetimeCheckpoint] = field(default_factory=list)

    def rows(self) -> List[List]:
        rows = []
        for cp in self.checkpoints:
            rows.append(
                [
                    f"{cp.writes:.3g}",
                    f"{cp.measured_density:.2%}",
                    f"{cp.test_accuracy:.4f}",
                    f"{cp.plan_cost:.0f}",
                    f"{cp.plan_sa1_mismatch:.0f}",
                    cp.maps_changed,
                    cp.pairs_resolved,
                    cp.pairs_reused,
                    cp.warm_hits,
                    f"{cp.replan_seconds * 1e3:.1f}",
                    (
                        f"{cp.cold_replan_seconds * 1e3:.1f}"
                        if cp.cold_replan_seconds is not None
                        else "-"
                    ),
                ]
            )
        return rows


@dataclass
class DensityGridResult:
    """Plan-cost curve across fault densities, delta-patched level to level."""

    dataset: str
    row_method: str
    checkpoints: List[LifetimeCheckpoint] = field(default_factory=list)

    def rows(self) -> List[List]:
        rows = []
        for cp in self.checkpoints:
            rows.append(
                [
                    f"{cp.measured_density:.2%}",
                    f"{cp.plan_cost:.0f}",
                    f"{cp.plan_sa1_mismatch:.0f}",
                    cp.maps_changed,
                    cp.pairs_resolved,
                    cp.pairs_reused,
                    cp.warm_hits,
                    f"{cp.replan_seconds * 1e3:.1f}",
                    (
                        f"{cp.cold_replan_seconds * 1e3:.1f}"
                        if cp.cold_replan_seconds is not None
                        else "-"
                    ),
                ]
            )
        return rows


# --------------------------------------------------------------------------- #
# Shared machinery
# --------------------------------------------------------------------------- #
def _build_trainer(
    dataset: str,
    model: str,
    scale: str,
    seed: int,
    epochs: Optional[int],
    base_density: float,
    sa_ratio: Tuple[float, float],
    row_method: Optional[str],
) -> FaultyTrainer:
    graph = load_dataset(dataset, scale=scale, seed=seed)
    config = configs.training_config(dataset, scale, seed=seed, epochs=epochs)
    hardware = build_hardware(scale, base_density, sa_ratio, seed=seed)
    kwargs = configs.strategy_kwargs_for("fare", scale)
    if row_method is not None:
        kwargs["row_method"] = row_method
    strategy = build_strategy("fare", **kwargs)
    return FaultyTrainer(
        graph=graph,
        model_name=model,
        strategy=strategy,
        config=config,
        hardware=hardware,
        post_deployment=None,
        replan_on_rescan=True,
    )


def _delta_counter(stats_before: dict, stats_after: dict, key: str) -> int:
    return int(stats_after.get(key, 0.0) - stats_before.get(key, 0.0))


def _wear_step(
    trainer: FaultyTrainer,
    increment: float,
    compare_cold: bool,
) -> Tuple[LifetimeCheckpoint, object]:
    """Apply one wear-out density increment and measure the re-plan."""
    before = dict(trainer.strategy.mapping_engine_stats() or {})
    started = time.perf_counter()
    report = trainer.apply_fault_delta(increment, replan=True)
    replan_seconds = time.perf_counter() - started
    after = dict(trainer.strategy.mapping_engine_stats() or {})

    cold_seconds = None
    if compare_cold:
        mapper = trainer.strategy.mapper
        cold = FaReStrategy(
            sa1_weight=mapper.sa1_weight,
            row_method=mapper.row_method,
            assignment_method=mapper.assignment_method,
            prune_crossbars=mapper.prune_crossbars,
            relax_sparsest_block=mapper.relax_sparsest_block,
            use_delta_planning=False,
        )
        started = time.perf_counter()
        cold.plan_adjacency(
            trainer.blocks_per_batch,
            report.fault_maps,
            trainer.adjacency_crossbar_ids,
            trainer.hardware.config.crossbar_rows,
        )
        cold_seconds = time.perf_counter() - started

    plans = trainer.plans or []
    checkpoint = LifetimeCheckpoint(
        writes=0.0,  # filled in by the caller
        cumulative_density=0.0,  # filled in by the caller
        measured_density=population_density(report.fault_maps),
        test_accuracy=float("nan"),  # filled in by the caller when trained
        plan_cost=float(sum(plan.total_cost for plan in plans)),
        plan_sa1_mismatch=float(sum(plan.total_sa1_mismatch for plan in plans)),
        maps_changed=_delta_counter(before, after, "mapping_delta_maps_changed"),
        pairs_resolved=_delta_counter(before, after, "mapping_pairs_total"),
        pairs_reused=_delta_counter(before, after, "mapping_delta_pairs_reused"),
        warm_hits=_delta_counter(before, after, "mapping_warm_start_hits"),
        warm_fallbacks=_delta_counter(
            before, after, "mapping_warm_start_fallbacks"
        ),
        replan_seconds=replan_seconds,
        cold_replan_seconds=cold_seconds,
    )
    return checkpoint, report


# --------------------------------------------------------------------------- #
# Drivers
# --------------------------------------------------------------------------- #
def run_lifetime(
    dataset: str = "ppi",
    model: str = "gcn",
    scale: str = "ci",
    seed: int = 0,
    epochs: Optional[int] = None,
    base_density: float = 0.01,
    sa_ratio: Tuple[float, float] = configs.SA_RATIO_9_1,
    row_method: Optional[str] = None,
    schedule: Optional[WearOutSchedule] = None,
    compare_cold: bool = False,
) -> LifetimeResult:
    """Train once, then walk a wear-out schedule with incremental re-plans.

    Training runs at ``base_density`` (the pre-deployment fault level).  Each
    subsequent checkpoint injects the endurance model's density increment,
    re-scans, delta-re-plans, and evaluates test accuracy on the degraded
    hardware — producing the accuracy/remap-cost-vs-write-cycles curve.
    ``compare_cold=True`` additionally times a from-scratch re-plan of the
    same fault maps at every checkpoint (the speedup denominator).
    """
    if schedule is None:
        schedule = WearOutSchedule.log_spaced(EnduranceModel())
    trainer = _build_trainer(
        dataset, model, scale, seed, epochs, base_density, sa_ratio, row_method
    )
    trainer.train()
    result = LifetimeResult(
        dataset=dataset,
        model=model,
        row_method=trainer.strategy.mapper.row_method,
        base_density=base_density,
        base_test_accuracy=trainer.evaluate("test"),
    )
    cumulative = schedule.cumulative_densities()
    for writes, density, increment in zip(
        schedule.write_checkpoints, cumulative, schedule.density_increments()
    ):
        checkpoint, _ = _wear_step(trainer, increment, compare_cold)
        checkpoint.writes = writes
        checkpoint.cumulative_density = density
        checkpoint.test_accuracy = trainer.evaluate("test")
        result.checkpoints.append(checkpoint)
        logger.info(
            "lifetime checkpoint writes=%.3g density=%.3f acc=%.4f replan=%.1fms",
            writes,
            checkpoint.measured_density,
            checkpoint.test_accuracy,
            checkpoint.replan_seconds * 1e3,
        )
    return result


def run_density_grid(
    dataset: str = "ppi",
    model: str = "gcn",
    scale: str = "ci",
    seed: int = 0,
    base_density: float = 0.01,
    densities: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10),
    sa_ratio: Tuple[float, float] = configs.SA_RATIO_9_1,
    row_method: Optional[str] = None,
    compare_cold: bool = False,
) -> DensityGridResult:
    """Cross-density plan grid, each level delta-patched from the previous.

    No training: the trainer is used only for its preprocessing (real
    adjacency blocks + BIST machinery).  Starting from the ``base_density``
    plan, each target density is reached by injecting the difference and
    delta-re-planning — the incremental analogue of planning every density
    level of a figure grid from scratch.
    """
    trainer = _build_trainer(
        dataset, model, scale, seed, epochs=1, base_density=base_density,
        sa_ratio=sa_ratio, row_method=row_method,
    )
    result = DensityGridResult(
        dataset=dataset, row_method=trainer.strategy.mapper.row_method
    )
    previous = base_density
    for target in densities:
        increment = target - previous
        if increment < 0:
            raise ValueError(
                f"densities must be non-decreasing from base_density; "
                f"{target} < {previous}"
            )
        checkpoint, _ = _wear_step(trainer, increment, compare_cold)
        checkpoint.cumulative_density = target
        result.checkpoints.append(checkpoint)
        previous = target
    return result


def format_lifetime(result: LifetimeResult) -> str:
    title = (
        f"Device lifetime — {result.dataset} ({result.model.upper()}), "
        f"row method {result.row_method}, base density "
        f"{result.base_density:.1%}, base test accuracy "
        f"{result.base_test_accuracy:.4f}"
    )
    return format_table(list(LIFETIME_HEADERS), result.rows(), title=title)


def format_density_grid(result: DensityGridResult) -> str:
    title = (
        f"Cross-density plan grid (delta-patched) — {result.dataset}, "
        f"row method {result.row_method}"
    )
    return format_table(list(DENSITY_GRID_HEADERS), result.rows(), title=title)


# --------------------------------------------------------------------------- #
# CLI (dispatched from ``python -m repro.experiments lifetime``)
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments lifetime",
        description=(
            "Device-lifetime scenario: wear-out faults accumulate along an "
            "endurance curve and the FaRe mapping is re-planned incrementally "
            "at every checkpoint."
        ),
    )
    parser.add_argument("--dataset", default="ppi")
    parser.add_argument("--model", default="gcn")
    parser.add_argument("--scale", default="ci", choices=("ci", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--base-density", type=float, default=0.01)
    parser.add_argument(
        "--row-method",
        default=None,
        choices=("greedy", "hungarian", "bsuitor"),
        help="override the scale's default inner row-assignment solver",
    )
    parser.add_argument(
        "--checkpoints", type=int, default=6, help="wear-out checkpoints"
    )
    parser.add_argument("--start-probability", type=float, default=0.002)
    parser.add_argument("--stop-probability", type=float, default=0.2)
    parser.add_argument("--mean-endurance", type=float, default=1e9)
    parser.add_argument("--sigma", type=float, default=0.5)
    parser.add_argument(
        "--compare-cold",
        action="store_true",
        help="also time a from-scratch re-plan at every checkpoint",
    )
    parser.add_argument(
        "--grid",
        action="store_true",
        help="run the cross-density plan grid instead (no training)",
    )
    parser.add_argument(
        "--densities",
        type=float,
        nargs="+",
        default=[0.02, 0.04, 0.06, 0.08, 0.10],
        help="target densities for --grid (non-decreasing)",
    )
    return parser


def cli_main(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.grid:
        result = run_density_grid(
            dataset=args.dataset,
            model=args.model,
            scale=args.scale,
            seed=args.seed,
            base_density=args.base_density,
            densities=args.densities,
            row_method=args.row_method,
            compare_cold=args.compare_cold,
        )
        print(format_density_grid(result))
        return 0
    model = EnduranceModel(
        mean_endurance=args.mean_endurance, sigma_log10=args.sigma
    )
    schedule = WearOutSchedule.log_spaced(
        model,
        start_probability=args.start_probability,
        stop_probability=args.stop_probability,
        num_checkpoints=args.checkpoints,
    )
    result = run_lifetime(
        dataset=args.dataset,
        model=args.model,
        scale=args.scale,
        seed=args.seed,
        epochs=args.epochs,
        base_density=args.base_density,
        row_method=args.row_method,
        schedule=schedule,
        compare_cold=args.compare_cold,
    )
    print(format_lifetime(result))
    return 0
