"""Failure taxonomy, retry policy and fault injection for the sweep engine.

A sweep that serves many overlapping figure grids must behave like a job
system: one worker exception, hang or mid-sweep crash may not lose the whole
grid.  This module is the vocabulary of that robustness layer:

* :class:`FailureKind` / :func:`classify_failure` — the typed taxonomy every
  executor routes per-run errors through:

  - ``TRANSIENT``: the *execution substrate* failed (worker killed, broken
    process pool, wall-clock timeout, dropped pipe).  The run itself is
    presumed fine; retrying on a fresh worker is expected to succeed.
  - ``DETERMINISTIC``: the exception was raised *inside* the run
    (``execute_spec`` and below).  Training is deterministic per spec, so
    the same inputs reproduce the same exception — retrying is pointless
    and the spec is quarantined immediately.
  - ``INFRA``: the surrounding machinery failed (store I/O, result
    (un)pickling, out-of-memory).  Usually environmental and worth a
    bounded retry, but tracked separately so operators can tell a flaky
    disk from a flaky worker.

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  **deterministic seeded jitter**: the jitter is a pure function of
  ``(policy seed, spec signature, attempt)``, never of wall-clock time or a
  global RNG, so serial and parallel execution replay identical retry
  schedules and repeated chaos runs reproduce bit-identical results and
  counters.
* :class:`FailureRecord` / :class:`SpecExecutionError` — per-spec failure
  context (spec signature, classification, attempts, full remote traceback)
  instead of a bare pickled exception that aborts the sweep.
* :class:`FaultInjector` — the deterministic chaos harness used by the
  fault-injection tests and ``benchmarks/test_bench_sweep_resilience.py``:
  kill the worker on the Nth artifact group, raise on chosen spec
  signatures (N times, then succeed), delay a group past the supervisor's
  timeout, corrupt a store file, or abort the sweep after K published runs.
  Service-level hooks (``benchmarks/test_bench_sweep_service.py``) kill a
  lease holder right after it wins a lease, corrupt a lease file, or
  freeze a heartbeat so other clients observe a stale lease.  Every hook
  is gated on the *attempt number* (or a target spec signature), which
  makes the injected chaos reproducible without any cross-process state.

The rule for future PRs (see ``docs/ARCHITECTURE.md``): any new executor —
remote workers, an async queue, a REST front-end — must wrap per-run errors
in :class:`FailureRecord` via :func:`classify_failure` rather than letting
raw exceptions propagate, so retry/quarantine semantics stay uniform.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.tabulate import format_table

__all__ = [
    "FailureKind",
    "FailureRecord",
    "FaultInjector",
    "GroupTimeoutError",
    "InjectedDeterministicError",
    "InjectedInfraError",
    "InjectedTransientError",
    "RetryPolicy",
    "SpecExecutionError",
    "WorkerCrashError",
    "classify_failure",
    "format_failure_report",
]


class FailureKind(str, Enum):
    """Classification of one failed run attempt (see module docstring)."""

    TRANSIENT = "transient"
    DETERMINISTIC = "deterministic"
    INFRA = "infra"


class WorkerCrashError(Exception):
    """A worker process died (killed, segfaulted, OOM-killed) mid-group."""


class GroupTimeoutError(Exception):
    """An artifact group exceeded the supervisor's wall-clock timeout."""


class InjectedTransientError(ConnectionError):
    """Fault injection: a transient-classified failure (succeeds on retry)."""


class InjectedDeterministicError(RuntimeError):
    """Fault injection: a deterministic failure (reproduces on every retry)."""


class InjectedInfraError(OSError):
    """Fault injection: an infrastructure-classified failure."""


#: Exception types whose failures are presumed execution-substrate flakiness.
#: Checked before the INFRA types: ``BrokenPipeError``/``ConnectionError``
#: are ``OSError`` subclasses but mean "the worker went away", not "the disk
#: is broken".
_TRANSIENT_TYPES = (
    WorkerCrashError,
    GroupTimeoutError,
    BrokenProcessPool,
    TimeoutError,
    ConnectionError,
    EOFError,
    InterruptedError,
)

#: Exception types blamed on the surrounding machinery (I/O, serialization).
_INFRA_TYPES = (
    OSError,
    MemoryError,
    pickle.PickleError,
    json.JSONDecodeError,
)


def classify_failure(error: BaseException) -> FailureKind:
    """Map an exception to its :class:`FailureKind`.

    :class:`SpecExecutionError` wrappers carry the classification of their
    remote cause and pass it through unchanged.  Everything that is neither
    a known transport/substrate failure nor a known infrastructure failure
    is ``DETERMINISTIC``: per-spec training is deterministic, so an
    exception raised inside ``execute_spec`` will reproduce on retry.
    """
    if isinstance(error, SpecExecutionError):
        return error.kind
    if isinstance(error, _TRANSIENT_TYPES):
        return FailureKind.TRANSIENT
    if isinstance(error, _INFRA_TYPES):
        return FailureKind.INFRA
    return FailureKind.DETERMINISTIC


# --------------------------------------------------------------------------- #
# Failure records
# --------------------------------------------------------------------------- #
@dataclass
class FailureRecord:
    """One quarantined (or retried-to-death) spec with full context.

    ``spec`` is the canonical :class:`~repro.experiments.sweeps.RunSpec`;
    ``traceback`` is the formatted traceback from the process that raised
    (the *remote* traceback for worker failures), empty for supervisor-made
    records (timeouts, worker crashes) that have no Python traceback.
    """

    spec: object
    signature: str
    kind: FailureKind
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1

    @classmethod
    def from_exception(
        cls, spec, error: BaseException, attempts: int
    ) -> "FailureRecord":
        return cls(
            spec=spec,
            signature=spec.signature(),
            kind=classify_failure(error),
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
            attempts=attempts,
        )

    def describe(self) -> str:
        """One-line summary used by logs and the failure report."""
        return (
            f"{self.signature} [{self.kind.value}] {self.error_type}: "
            f"{self.message} (after {self.attempts} attempt(s))"
        )

    def to_dict(self) -> Dict:
        """JSON-friendly form (used by the sweep journal)."""
        return {
            "signature": self.signature,
            "spec": self.spec.to_dict(),
            "kind": self.kind.value,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


class SpecExecutionError(Exception):
    """A spec failed terminally; raised where a result is required.

    Carries the failing spec's signature, classification and the full
    remote traceback, so callers that cannot tolerate a missing result
    (``run_single``, ``SweepResult[spec]``) surface actionable context
    instead of a bare pickled exception.
    """

    def __init__(self, record: FailureRecord) -> None:
        self.record = record
        detail = f"\n--- remote traceback ---\n{record.traceback}" if record.traceback else ""
        super().__init__(f"run {record.describe()}{detail}")

    @property
    def kind(self) -> FailureKind:
        return self.record.kind

    @property
    def signature(self) -> str:
        return self.record.signature


def format_failure_report(records: Iterable[FailureRecord]) -> str:
    """Render quarantined specs as a table plus their tracebacks."""
    records = list(records)
    if not records:
        return "failure report: no quarantined specs"
    rows: List[List] = []
    for record in records:
        spec = record.spec
        rows.append(
            [
                record.signature[:12],
                f"{spec.dataset}/{spec.model}/{spec.strategy}",
                f"{spec.fault_density:.3f}",
                spec.seed,
                record.kind.value,
                record.attempts,
                f"{record.error_type}: {record.message}"[:60],
            ]
        )
    table = format_table(
        ["Signature", "Workload", "Density", "Seed", "Kind", "Attempts", "Error"],
        rows,
        title=f"failure report — {len(records)} quarantined spec(s)",
    )
    tracebacks = [
        f"--- {record.signature} ---\n{record.traceback.rstrip()}"
        for record in records
        if record.traceback
    ]
    return "\n\n".join([table] + tracebacks)


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts total tries per spec (1 = never retry).
    ``DETERMINISTIC`` failures are never retried.  The backoff before retry
    ``attempt`` (0-based index of the attempt that just failed) is::

        min(max_delay, base_delay * backoff_factor**attempt * (1 + jitter*u))

    where ``u ∈ [0, 1)`` is derived by hashing ``(seed, spec signature,
    attempt)`` — the determinism rule: retry schedules are a pure function
    of the spec and the policy, never of wall-clock time or a shared RNG,
    so serial and parallel execution (and repeated chaos runs) reproduce
    identical backoff sequences and counters.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def retryable(self, kind: FailureKind) -> bool:
        return kind is not FailureKind.DETERMINISTIC

    def should_retry(self, kind: FailureKind, attempt: int) -> bool:
        """Whether attempt index ``attempt`` (0-based, just failed) retries."""
        return self.retryable(kind) and attempt + 1 < self.max_attempts

    def delay(self, signature: str, attempt: int) -> float:
        """Deterministic backoff before re-running ``signature``."""
        digest = hashlib.sha256(
            f"{self.seed}:{signature}:{attempt}".encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0**64
        base = self.base_delay * self.backoff_factor**attempt
        return min(self.max_delay, base * (1.0 + self.jitter * u))


# --------------------------------------------------------------------------- #
# Deterministic fault injection
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultInjector:
    """Deterministic chaos hooks for the sweep engine (tests/benchmarks).

    The injector is immutable, picklable plain data — it ships to spawned
    workers with each task.  Every hook is gated on the attempt index, so
    an injected failure strikes a known attempt and then stands down; no
    cross-process state is needed and chaos runs replay exactly.

    ``transient_specs``
        ``(spec signature, fail_attempts)`` pairs: executing that spec
        raises :class:`InjectedTransientError` while ``attempt <
        fail_attempts`` (i.e. it fails that many times, then succeeds).
    ``deterministic_specs`` / ``infra_specs``
        Signatures that raise :class:`InjectedDeterministicError` /
        :class:`InjectedInfraError` on *every* attempt.
    ``kill_group`` / ``kill_attempt``
        ``os._exit`` the worker process at the start of this artifact-group
        index, on exactly that attempt (parallel executor only).
    ``delay_group`` / ``delay_attempt`` / ``delay_seconds``
        Sleep at the start of this group index on exactly that attempt
        (used with ``group_timeout`` to simulate a hung worker).  A pool
        kill requeues *every* in-flight group at the next attempt, so a
        chaos scenario combining a kill with a later hang schedules the
        delay at ``delay_attempt=1``.
    ``abort_after``
        Raise ``KeyboardInterrupt`` in the *engine* process after this many
        results have been published — simulates an interrupted
        ``python -m repro.experiments`` invocation for resume tests.
    ``kill_lease_holder``
        Service-level chaos: ``os._exit(137)`` the client process right
        after it acquires the lease on this spec signature — models a
        client crashing mid-run while holding the lease, which a later
        client must detect (dead pid / stale mtime) and reclaim.
    ``corrupt_lease_for``
        Overwrite the freshly created lease file for these signatures with
        garbage bytes — a torn lease write.  Readers must classify an
        unparseable lease as stale (reclaimable), never crash on it.
    ``freeze_heartbeat_for``
        Stop heartbeating (mtime refresh) for these signatures while still
        running — models a livelocked client, which other clients see as a
        stale lease once ``stale_after`` passes.
    """

    transient_specs: Tuple[Tuple[str, int], ...] = ()
    deterministic_specs: Tuple[str, ...] = ()
    infra_specs: Tuple[str, ...] = ()
    kill_group: Optional[int] = None
    kill_attempt: int = 0
    delay_group: Optional[int] = None
    delay_attempt: int = 0
    delay_seconds: float = 0.0
    abort_after: Optional[int] = None
    kill_lease_holder: Optional[str] = None
    corrupt_lease_for: Tuple[str, ...] = ()
    freeze_heartbeat_for: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    def on_spec_start(self, signature: str, attempt: int) -> None:
        """Raise the injected per-spec failure, if one is scheduled."""
        if signature in self.deterministic_specs:
            raise InjectedDeterministicError(
                f"injected deterministic failure for {signature}"
            )
        if signature in self.infra_specs:
            raise InjectedInfraError(
                0, f"injected infrastructure failure for {signature}"
            )
        for target, fail_attempts in self.transient_specs:
            if target == signature and attempt < fail_attempts:
                raise InjectedTransientError(
                    f"injected transient failure for {signature} "
                    f"(attempt {attempt} of {fail_attempts} injected)"
                )

    def on_group_start(self, group_index: int, attempt: int, in_worker: bool) -> None:
        """Kill or stall the worker at the start of the targeted group."""
        if not in_worker:
            return
        if (
            self.kill_group is not None
            and group_index == self.kill_group
            and attempt == self.kill_attempt
        ):
            # A hard kill, not an exception: models the OOM-killer / segfault
            # case the supervisor must survive via pool respawn + requeue.
            os._exit(139)
        if (
            self.delay_group is not None
            and group_index == self.delay_group
            and attempt == self.delay_attempt
        ):
            time.sleep(self.delay_seconds)

    def should_abort(self, published_count: int) -> bool:
        return self.abort_after is not None and published_count >= self.abort_after

    # ------------------------------------------------------------------ #
    # Service-level chaos (lease protocol)
    # ------------------------------------------------------------------ #
    def on_lease_acquired(self, signature: str, lease_path) -> None:
        """Strike right after a lease is won, before any work happens.

        The kill is ``os._exit(137)`` (SIGKILL-style, no cleanup handlers)
        so the lease file survives with a live-looking mtime and a dead
        owner pid — the exact state stale-lease reclamation must handle.
        """
        if signature in self.corrupt_lease_for:
            Path(lease_path).write_text('{"pid": ')
        if self.kill_lease_holder is not None and signature == self.kill_lease_holder:
            os._exit(137)

    def heartbeat_frozen(self, signature: str) -> bool:
        """Whether the heartbeat pump should skip refreshing this lease."""
        return signature in self.freeze_heartbeat_for

    # ------------------------------------------------------------------ #
    @staticmethod
    def corrupt_store_file(path) -> None:
        """Overwrite a stored result with garbage (torn-write simulation)."""
        Path(path).write_text('{"torn": ')
