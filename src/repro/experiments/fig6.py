"""Fig. 6 — pre-deployment plus post-deployment faults.

Three dataset/model pairs × pre-deployment densities of 1 %, 2 % and 3 % with
an additional 1 % of post-deployment faults injected uniformly across the
training epochs (worst case), for both SA0:SA1 ratios.  The expected shape
mirrors Fig. 5: FARe stays within ~2 % of fault-free while NR loses up to
~15 %.

Declared as a :class:`~repro.experiments.sweeps.SweepPlan`
(:func:`plan_fig6`).  Post-deployment runs share graph-side preprocessing and
the *initial* mapping plans like every other run; the per-epoch re-scans and
plan refreshes stay run-local (they mutate only the run's own rebuilt
hardware state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.configs import (
    COMPARED_STRATEGIES,
    FIG6_FAULT_DENSITIES,
    FIG6_PAIRS,
    FIG6_POST_DEPLOYMENT_EXTRA,
    SA_RATIO_1_1,
    SA_RATIO_9_1,
)
from repro.experiments.sweeps import (
    RunSpec,
    SweepEngine,
    SweepPlan,
    default_engine,
    run_seed_replicates,
)
from repro.utils.tabulate import format_table

#: Column headers matching :meth:`Fig6Result.rows` (shared with the CLI).
FIG6_HEADERS: Tuple[str, ...] = ("Workload", "Density") + tuple(COMPARED_STRATEGIES)


@dataclass
class Fig6Result:
    """Test accuracies keyed by (dataset, model, density, strategy).

    Quarantined cells hold ``None`` (rendered ``(missing)``); drops derived
    from a missing cell are ``None`` too.
    """

    sa_ratio: Tuple[float, float]
    densities: Tuple[float, ...]
    pairs: Tuple[Tuple[str, str], ...]
    post_deployment_extra: float
    accuracies: Dict[Tuple[str, str, float, str], Optional[float]] = field(
        default_factory=dict
    )

    def accuracy(
        self, dataset: str, model: str, density: float, strategy: str
    ) -> Optional[float]:
        return self.accuracies[(dataset, model, density, strategy)]

    def accuracy_drop(
        self, dataset: str, model: str, density: float, strategy: str
    ) -> Optional[float]:
        baseline = self.accuracies[(dataset, model, density, "fault_free")]
        measured = self.accuracies[(dataset, model, density, strategy)]
        if baseline is None or measured is None:
            return None
        return baseline - measured

    def rows(self) -> List[List]:
        rows = []
        for dataset, model in self.pairs:
            for density in self.densities:
                row = [f"{dataset} ({model.upper()})", f"{density:.0%}+1%"]
                for strategy in COMPARED_STRATEGIES:
                    row.append(self.accuracies[(dataset, model, density, strategy)])
                rows.append(row)
        return rows


def _fig6_specs(
    sa_ratio: Tuple[float, float],
    densities: Sequence[float],
    pairs: Sequence[Tuple[str, str]],
    strategies: Sequence[str],
    post_deployment_extra: float,
    scale: str,
    seed: int,
    epochs: Optional[int],
) -> Dict[Tuple[str, str, float, str], RunSpec]:
    specs: Dict[Tuple[str, str, float, str], RunSpec] = {}
    for dataset, model in pairs:
        for density in densities:
            for strategy in strategies:
                is_reference = strategy == "fault_free"
                specs[(dataset, model, density, strategy)] = RunSpec.make(
                    dataset,
                    model,
                    strategy,
                    0.0 if is_reference else density,
                    sa_ratio=sa_ratio,
                    scale=scale,
                    seed=seed,
                    epochs=epochs,
                    post_deployment_extra=(
                        None if is_reference else post_deployment_extra
                    ),
                )
    return specs


def plan_fig6(
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    densities: Sequence[float] = FIG6_FAULT_DENSITIES,
    pairs: Sequence[Tuple[str, str]] = FIG6_PAIRS,
    strategies: Sequence[str] = COMPARED_STRATEGIES,
    post_deployment_extra: float = FIG6_POST_DEPLOYMENT_EXTRA,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
) -> SweepPlan:
    """One panel of Fig. 6 as a declarative plan."""
    return SweepPlan(
        _fig6_specs(
            sa_ratio,
            densities,
            pairs,
            strategies,
            post_deployment_extra,
            scale,
            seed,
            epochs,
        ).values()
    )


def run_fig6(
    sa_ratio: Tuple[float, float] = SA_RATIO_9_1,
    densities: Sequence[float] = FIG6_FAULT_DENSITIES,
    pairs: Sequence[Tuple[str, str]] = FIG6_PAIRS,
    strategies: Sequence[str] = COMPARED_STRATEGIES,
    post_deployment_extra: float = FIG6_POST_DEPLOYMENT_EXTRA,
    scale: str = "ci",
    seed: int = 0,
    epochs: int = None,
    engine: Optional[SweepEngine] = None,
) -> Fig6Result:
    """Regenerate one panel of Fig. 6 (choose the panel via ``sa_ratio``)."""
    if engine is None:
        engine = default_engine()
    specs = _fig6_specs(
        sa_ratio,
        densities,
        pairs,
        strategies,
        post_deployment_extra,
        scale,
        seed,
        epochs,
    )
    results = engine.run(SweepPlan(specs.values()))
    result = Fig6Result(
        sa_ratio=tuple(sa_ratio),
        densities=tuple(densities),
        pairs=tuple(tuple(p) for p in pairs),
        post_deployment_extra=post_deployment_extra,
    )
    for cell, spec in specs.items():
        result.accuracies[cell] = results.value(spec, lambda r: r.final_test_accuracy)
    return result


def run_fig6_seeds(
    seeds: Sequence[int] = (0, 1, 2), **kwargs
) -> Dict[int, Fig6Result]:
    """Seed-replicated Fig. 6 panel (one engine pass over the union grid)."""
    return run_seed_replicates(plan_fig6, run_fig6, seeds, **kwargs)


def run_fig6a(**kwargs) -> Fig6Result:
    """Panel (a): SA0:SA1 = 9:1."""
    return run_fig6(sa_ratio=SA_RATIO_9_1, **kwargs)


def run_fig6b(**kwargs) -> Fig6Result:
    """Panel (b): SA0:SA1 = 1:1."""
    return run_fig6(sa_ratio=SA_RATIO_1_1, **kwargs)


def format_fig6(result: Fig6Result) -> str:
    ratio = f"{result.sa_ratio[0]:.0f}:{result.sa_ratio[1]:.0f}"
    return format_table(
        list(FIG6_HEADERS),
        result.rows(),
        title=(
            f"Fig. 6 — test accuracy with pre+post-deployment faults, "
            f"SA0:SA1 = {ratio}"
        ),
    )
