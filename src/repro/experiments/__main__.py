"""CLI: regenerate any paper figure through the declarative sweep engine.

::

    python -m repro.experiments fig4                      # one figure, seed 0
    python -m repro.experiments fig5a fig5b --seeds 0 1 2 # mean±std tables
    python -m repro.experiments all --workers 4 --store   # everything, parallel,
                                                          # persisted run cache
    python -m repro.experiments --list                    # available figures

Training figures run through one :class:`~repro.experiments.sweeps.SweepPlan`
per figure: preprocessing artifacts are shared across grid cells, multiple
``--seeds`` add a replication axis rendered as mean ± std error bars,
``--workers N`` spreads workload groups over spawned processes, and
``--store`` persists results under ``benchmarks/results/runcache/``
(``REPRO_RUNCACHE_DIR`` overrides the location) so re-runs skip finished
cells.  ``fig7`` and ``tables`` are analytical/static and run as-is.

Fault tolerance: execution is supervised (see
:mod:`repro.experiments.failures`) — ``--max-attempts`` and ``--timeout``
tune the retry policy and per-group wall-clock budget, ``--resume`` replays
the crash-safe journal next to the run cache so an interrupted invocation
recomputes only unfinished specs (implies ``--store``), and any spec that
exhausts its retries is quarantined: the grid still renders (missing cells
marked), a failure report prints, and the exit status is 1 so CI catches
partial sweeps.  A ``Ctrl-C`` exits 130 with a resume hint.

Sweep service (multi-client, crash-safe — see
:mod:`repro.experiments.service`)::

    python -m repro.experiments submit fig4 --epochs 1   # queue a grid
    python -m repro.experiments serve --idle-exit 5      # execute until idle
    python -m repro.experiments drain                    # execute until empty
    python -m repro.experiments status                   # counters + failures

Device-lifetime scenario (endurance wear-out + incremental re-planning —
see :mod:`repro.experiments.lifetime`)::

    python -m repro.experiments lifetime --epochs 2      # accuracy vs writes
    python -m repro.experiments lifetime --grid          # cross-density grid
"""

from __future__ import annotations

import argparse
import sys
import time
from functools import partial
from typing import List

from repro.experiments import fig3, fig4, fig5, fig6, fig7, headline, tables
from repro.experiments.configs import SA_RATIO_1_1, SA_RATIO_9_1
from repro.experiments.sweeps import (
    ResultStore,
    SweepEngine,
    SweepJournal,
    run_seed_replicates,
)
from repro.experiments.failures import RetryPolicy

#: name → (plan_fn, run_fn, format_fn, seed-aggregation headers, title).
#: Headers come from the figure modules (single source next to ``rows()``).
TRAINING_FIGURES = {
    "fig3": (
        fig3.plan_fig3,
        fig3.run_fig3,
        fig3.format_fig3,
        fig3.FIG3_HEADERS,
        "Fig. 3 — per-phase SA0/SA1 sensitivity",
    ),
    "fig4": (
        fig4.plan_fig4,
        fig4.run_fig4,
        fig4.format_fig4,
        fig4.FIG4_SUMMARY_HEADERS,
        "Fig. 4 — final-epoch training accuracy",
    ),
    "fig5a": (
        partial(fig5.plan_fig5, sa_ratio=SA_RATIO_9_1),
        partial(fig5.run_fig5, sa_ratio=SA_RATIO_9_1),
        fig5.format_fig5,
        fig5.FIG5_HEADERS,
        "Fig. 5(a) — test accuracy, SA0:SA1 = 9:1",
    ),
    "fig5b": (
        partial(fig5.plan_fig5, sa_ratio=SA_RATIO_1_1),
        partial(fig5.run_fig5, sa_ratio=SA_RATIO_1_1),
        fig5.format_fig5,
        fig5.FIG5_HEADERS,
        "Fig. 5(b) — test accuracy, SA0:SA1 = 1:1",
    ),
    "fig6a": (
        partial(fig6.plan_fig6, sa_ratio=SA_RATIO_9_1),
        partial(fig6.run_fig6, sa_ratio=SA_RATIO_9_1),
        fig6.format_fig6,
        fig6.FIG6_HEADERS,
        "Fig. 6(a) — pre+post-deployment, SA0:SA1 = 9:1",
    ),
    "fig6b": (
        partial(fig6.plan_fig6, sa_ratio=SA_RATIO_1_1),
        partial(fig6.run_fig6, sa_ratio=SA_RATIO_1_1),
        fig6.format_fig6,
        fig6.FIG6_HEADERS,
        "Fig. 6(b) — pre+post-deployment, SA0:SA1 = 1:1",
    ),
    "headline": (
        headline.plan_headline,
        headline.run_headline,
        headline.format_headline,
        headline.HEADLINE_HEADERS,
        "Headline claims — paper vs measured",
    ),
}

ANALYTIC_FIGURES = ("fig7", "tables")
ALL_FIGURES = tuple(TRAINING_FIGURES) + ANALYTIC_FIGURES


def _emit_training_figure(name: str, args, engine: SweepEngine) -> str:
    plan_fn, run_fn, format_fn, headers, title = TRAINING_FIGURES[name]
    kwargs = dict(scale=args.scale, epochs=args.epochs)
    if len(args.seeds) == 1:
        return format_fn(run_fn(seed=args.seeds[0], engine=engine, **kwargs))
    results = run_seed_replicates(
        plan_fn,
        run_fn,
        args.seeds,
        engine=engine,
        max_workers=args.workers,
        **kwargs,
    )
    return tables.format_seed_table(
        headers,
        [results[seed].rows() for seed in args.seeds],
        args.seeds,
        title,
    )


def _emit_analytic_figure(name: str) -> str:
    if name == "fig7":
        return fig7.format_fig7(fig7.run_fig7())
    return "\n\n".join(
        [tables.format_table1(), tables.format_table2(), tables.format_table3()]
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate paper figures through the declarative sweep engine.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=["all"],
        help=f"figures to run: {', '.join(ALL_FIGURES)} or 'all' (default)",
    )
    parser.add_argument("--scale", default="ci", choices=("ci", "paper"))
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0],
        help="seed replication axis; >1 seed renders mean±std tables",
    )
    parser.add_argument("--epochs", type=int, default=None, help="override epoch count")
    parser.add_argument(
        "--workers", type=int, default=1, help="process-parallel workers (spawn)"
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="persist results in the on-disk run cache (benchmarks/results/runcache)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted invocation from the sweep journal next to "
            "the run cache (implies --store)"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per spec before quarantine (transient/infra failures only)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-artifact-group wall-clock budget in seconds (parallel runs)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figures and exit"
    )
    return parser


def main(argv: List[str] = None) -> int:
    argv_list = list(sys.argv[1:]) if argv is None else list(argv)
    if argv_list and argv_list[0] in ("serve", "submit", "status", "drain"):
        # Sweep-service subcommands (shared queue + leases over the run
        # cache) live in their own module with their own parser.
        from repro.experiments.service import cli_main

        return cli_main(argv_list)
    if argv_list and argv_list[0] == "lifetime":
        # Device-lifetime scenario (endurance wear-out + incremental
        # re-planning) — sequential and stateful, so it has its own driver
        # rather than a sweep grid.
        from repro.experiments.lifetime import cli_main as lifetime_main

        return lifetime_main(argv_list[1:])
    args = build_parser().parse_args(argv_list)
    if args.list:
        for name in ALL_FIGURES:
            print(name)
        return 0
    names = list(args.figures)
    if "all" in names:
        names = list(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_FIGURES)}, all", file=sys.stderr)
        return 2

    use_store = args.store or args.resume
    engine = SweepEngine(
        store=ResultStore() if use_store else None,
        max_workers=args.workers,
        retry_policy=RetryPolicy(max_attempts=args.max_attempts),
        group_timeout=args.timeout,
        journal=SweepJournal() if use_store else None,
    )
    started = time.perf_counter()
    try:
        for name in names:
            if name in TRAINING_FIGURES:
                print(_emit_training_figure(name, args, engine))
            else:
                print(_emit_analytic_figure(name))
            print()
    except KeyboardInterrupt:
        if args.resume:
            hint = "rerun with --resume to pick up where this sweep left off"
        elif use_store:
            hint = "completed runs are stored; rerun with --resume to skip them"
        else:
            hint = "run with --store --resume to make sweeps resumable"
        print(f"\ninterrupted — {hint}", file=sys.stderr)
        return 130
    elapsed = time.perf_counter() - started
    print(engine.format_summary())
    print(f"total wall time: {elapsed:.1f} s")
    if engine.failed:
        print()
        print(engine.failure_report())
        print(
            f"{len(engine.failed)} spec(s) quarantined — tables above mark the "
            "affected cells as (missing)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
