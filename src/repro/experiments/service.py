"""Crash-safe multi-client sweep service: job queue, leases, single-flight.

The ROADMAP's service north star is many concurrent clients submitting
overlapping figure grids against one shared run cache, served mostly from
cache, surviving client crashes.  This module is that front-end: a
persistent on-disk job queue plus a lease protocol layered over the
supervised :class:`~repro.experiments.sweeps.SweepEngine`, so N processes
(posing as machines sharing a filesystem) de-duplicate work by run
signature with zero torn reads and exactly one execution per unique spec.

Design — everything is plain files under one root (the run-cache
directory), no daemon or socket required::

    <root>/                      shared ResultStore (one <signature>.json per run)
    <root>/sweep_journal.<client>.jsonl   per-client crash-safe journals
    <root>/queue/<signature>.json         one pending job per unique spec
    <root>/queue/failed/<signature>.json  quarantined jobs (FailureRecord)
    <root>/leases/<signature>.lease       at most one executor per spec

**Idempotent submission.**  A job file is keyed by the spec's content
signature and atomically published (fsync'd temp + ``os.replace``);
re-submitting an already-queued spec is a counted dedupe hit, and a spec
whose result is already in the store is never queued at all.

**Lease-based single-flight.**  Before executing a job, a client must win
``<signature>.lease`` via ``os.open(..., O_CREAT | O_EXCL)`` — the
filesystem's atomic create is the mutual exclusion primitive.  The lease
records the owner pid and client id; the owner refreshes the file's mtime
from a heartbeat thread while training.  A lease is *stale* when its owner
pid is dead, its mtime is older than ``stale_after``, or its content is
unparseable (torn write); reclamation is serialized by an atomic rename to
a tombstone, so exactly one of the contending clients reclaims it.  After
winning a lease the client re-checks the store (another client may have
published while we waited) before executing — the single-flight rule.

**Failure routing.**  Per the :mod:`repro.experiments.failures` contract,
every error path wraps exceptions in :class:`FailureRecord` via
:func:`classify_failure`: engine-quarantined specs and service-level errors
both land in ``queue/failed/`` with their remote tracebacks, visible to any
client through ``status`` / ``drain`` (which render
:func:`format_failure_report`).

CLI (see :mod:`repro.experiments.__main__` for the figure runner)::

    python -m repro.experiments submit fig4 --epochs 1   # queue a grid
    python -m repro.experiments serve --idle-exit 5      # execute until idle
    python -m repro.experiments drain                    # execute until empty
    python -m repro.experiments status                   # counters + failures
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.failures import (
    FailureKind,
    FailureRecord,
    FaultInjector,
    RetryPolicy,
    format_failure_report,
)
from repro.experiments.sweeps import (
    SIGNATURE_VERSION,
    ResultStore,
    RunSpec,
    SweepEngine,
    SweepJournal,
    SweepPlan,
    _atomic_write,
    default_journal_path,
    default_store_dir,
)

__all__ = [
    "JobQueue",
    "Lease",
    "LeaseManager",
    "SweepService",
    "cli_main",
    "run_client",
]

#: Default staleness threshold (seconds without a heartbeat before other
#: clients may reclaim a lease).  Generous for real training runs; tests
#: and chaos benchmarks pass much smaller values.
DEFAULT_STALE_AFTER = 60.0

#: Subcommands this module owns (dispatched from ``python -m
#: repro.experiments``).
SERVICE_COMMANDS = ("serve", "submit", "status", "drain")


# --------------------------------------------------------------------------- #
# Leases
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Lease:
    """A won claim on one spec signature (held by this process)."""

    signature: str
    path: Path
    pid: int
    client_id: str


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a same-machine pid."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the pid exists but belongs to someone else.
        return True
    return True


class LeaseManager:
    """At-most-one-executor-per-signature via atomic lease files.

    The exclusion primitive is ``os.open(path, O_CREAT | O_EXCL)`` — it
    either creates the lease or raises, atomically, on any local
    filesystem.  Staleness (dead owner pid, mtime older than
    ``stale_after``, or unparseable content) makes a lease reclaimable;
    the reclaim itself is serialized by ``os.rename`` to a per-reclaimer
    tombstone, so when several clients notice the same stale lease exactly
    one wins the rename and the rest retry the create.

    Same-machine assumption: pid liveness is probed with ``os.kill(pid,
    0)``, so the dead-owner fast path only works for clients sharing a
    machine; cross-machine deployments rely on the mtime threshold alone.
    """

    def __init__(
        self,
        directory: Path,
        client_id: str,
        stale_after: float = DEFAULT_STALE_AFTER,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.directory = Path(directory)
        self.client_id = client_id
        self.stale_after = float(stale_after)
        self.injector = injector
        self.acquired = 0
        self.reclaimed = 0
        self.contended = 0
        self.released = 0
        self.lost = 0
        self.corrupt = 0
        self.heartbeats = 0

    # ------------------------------------------------------------------ #
    def _lease_path(self, signature: str) -> Path:
        return self.directory / f"{signature}.lease"

    def _is_stale(self, path: Path) -> bool:
        try:
            payload = json.loads(path.read_text())
            pid = int(payload["pid"])
        except FileNotFoundError:
            # Released/reclaimed between our create attempt and this read;
            # report stale so the caller loops back to another create try.
            return True
        except (OSError, ValueError, TypeError, KeyError, json.JSONDecodeError):
            # Torn or garbage lease (e.g. the corrupt_lease_for chaos hook):
            # unreadable means unownable — reclaimable, never a crash.
            self.corrupt += 1
            return True
        if not _pid_alive(pid):
            return True
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return True
        return age > self.stale_after

    def _try_reclaim(self, path: Path) -> bool:
        """Serialize reclamation: exactly one renamer wins the tombstone."""
        tombstone = path.with_name(f"{path.name}.reclaim.{os.getpid()}")
        try:
            os.rename(path, tombstone)
        except OSError:
            return False
        try:
            tombstone.unlink()
        except OSError:
            pass
        self.reclaimed += 1
        return True

    def cleanup_tombstones(self) -> int:
        """Drop tombstones orphaned by a reclaimer that crashed mid-reclaim."""
        removed = 0
        for path in self.directory.glob("*.reclaim.*"):
            try:
                if time.time() - path.stat().st_mtime > self.stale_after:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    # ------------------------------------------------------------------ #
    def acquire(self, signature: str) -> Optional[Lease]:
        """Try to win the lease on ``signature``; ``None`` when contended.

        Losing is not an error — the job is being executed by a live
        client; the caller skips it and the eventual result is served from
        the shared store.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._lease_path(signature)
        for _ in range(3):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._is_stale(path):
                    # Reclaim (or observe someone else reclaiming) and retry
                    # the atomic create.
                    self._try_reclaim(path)
                    continue
                self.contended += 1
                return None
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    {
                        "pid": os.getpid(),
                        "client_id": self.client_id,
                        "signature": signature,
                    },
                    handle,
                )
                handle.flush()
                os.fsync(handle.fileno())
            self.acquired += 1
            lease = Lease(signature, path, os.getpid(), self.client_id)
            if self.injector is not None:
                self.injector.on_lease_acquired(signature, path)
            return lease
        self.contended += 1
        return None

    def _owns(self, lease: Lease) -> bool:
        try:
            payload = json.loads(lease.path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return False
        return (
            payload.get("pid") == lease.pid
            and payload.get("client_id") == lease.client_id
        )

    def heartbeat(self, lease: Lease) -> bool:
        """Refresh the lease mtime; ``False`` when the lease was lost."""
        if self.injector is not None and self.injector.heartbeat_frozen(
            lease.signature
        ):
            return True  # livelock chaos: stay "running" but go mtime-silent
        if not self._owns(lease):
            self.lost += 1
            return False
        try:
            os.utime(lease.path)
        except OSError:
            self.lost += 1
            return False
        self.heartbeats += 1
        return True

    def release(self, lease: Lease) -> bool:
        """Drop an owned lease; a lease lost to reclamation is counted."""
        if not self._owns(lease):
            self.lost += 1
            return False
        try:
            lease.path.unlink()
        except OSError:
            self.lost += 1
            return False
        self.released += 1
        return True

    def active(self) -> List[str]:
        """Signatures currently under lease (any owner)."""
        return sorted(
            path.name[: -len(".lease")]
            for path in self.directory.glob("*.lease")
        )

    def stats(self) -> Dict[str, float]:
        return {
            "lease_acquired": float(self.acquired),
            "lease_reclaimed": float(self.reclaimed),
            "lease_contended": float(self.contended),
            "lease_released": float(self.released),
            "lease_lost": float(self.lost),
            "lease_corrupt": float(self.corrupt),
            "lease_heartbeats": float(self.heartbeats),
        }


class _HeartbeatPump:
    """Daemon thread refreshing a lease's mtime while training blocks."""

    def __init__(self, manager: LeaseManager, lease: Lease, interval: float) -> None:
        self.manager = manager
        self.lease = lease
        self.interval = max(0.01, float(interval))
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_HeartbeatPump":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.manager.heartbeat(self.lease):
                return

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


# --------------------------------------------------------------------------- #
# Job queue
# --------------------------------------------------------------------------- #
class JobQueue:
    """Persistent on-disk job queue, one atomically-published file per spec.

    Submission is idempotent by construction: the job filename *is* the
    run signature, so concurrent submitters of the same spec converge on
    one file (re-submission is a counted ``queue_dedupe_hits``).  Readers
    tolerate concurrent completion (``FileNotFoundError`` while listing)
    and torn/alien files (skipped, counted ``queue_unreadable``).  A
    failed job moves to ``failed/<signature>.json`` as a serialized
    :class:`FailureRecord` including the remote traceback, so any client's
    ``status`` can render the cross-client failure report.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.failed_directory = self.directory / "failed"
        self.submitted = 0
        self.dedupe_hits = 0
        self.completed = 0
        self.failed = 0
        self.unreadable = 0

    # ------------------------------------------------------------------ #
    def _job_path(self, signature: str) -> Path:
        return self.directory / f"{signature}.json"

    def submit_spec(self, spec: RunSpec) -> bool:
        """Queue one spec; ``False`` (dedupe hit) when already queued."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._job_path(spec.signature())
        if path.exists():
            self.dedupe_hits += 1
            return False
        # Two clients can both pass the exists() check; both then publish
        # byte-identical payloads (the filename is the content signature),
        # so the duplicate os.replace is harmless.
        _atomic_write(
            path,
            json.dumps(
                {
                    "signature": spec.signature(),
                    "signature_version": SIGNATURE_VERSION,
                    "spec": spec.to_dict(),
                },
                sort_keys=True,
            )
            + "\n",
        )
        self.submitted += 1
        return True

    def pending(self) -> List[RunSpec]:
        """Queued specs, oldest job file first (FIFO-ish fairness)."""
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, path.name, path))
        specs: List[RunSpec] = []
        for _, _, path in sorted(entries):
            try:
                payload = json.loads(path.read_text())
            except FileNotFoundError:
                continue  # completed by a concurrent client mid-listing
            except (OSError, json.JSONDecodeError):
                self.unreadable += 1
                continue
            if (
                payload.get("signature_version") != SIGNATURE_VERSION
                or "spec" not in payload
            ):
                self.unreadable += 1
                continue
            try:
                specs.append(RunSpec.from_dict(payload["spec"]))
            except (KeyError, TypeError, ValueError):
                self.unreadable += 1
                continue
        return specs

    def pending_signatures(self) -> List[str]:
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def mark_done(self, spec: RunSpec) -> bool:
        """Retire a completed job; ``False`` if another client already did."""
        try:
            self._job_path(spec.signature()).unlink()
        except FileNotFoundError:
            return False
        except OSError:
            return False
        self.completed += 1
        return True

    def mark_failed(self, record: FailureRecord) -> None:
        """Move a job to the failed ledger with its full failure context."""
        self.failed_directory.mkdir(parents=True, exist_ok=True)
        payload = dict(record.to_dict())
        payload["traceback"] = record.traceback
        _atomic_write(
            self.failed_directory / f"{record.signature}.json",
            json.dumps(payload, sort_keys=True) + "\n",
        )
        try:
            self._job_path(record.signature).unlink()
        except OSError:
            pass
        self.failed += 1

    def failed_records(self) -> List[FailureRecord]:
        """Quarantined jobs from *any* client, rebuilt as records."""
        records: List[FailureRecord] = []
        for path in sorted(self.failed_directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                records.append(
                    FailureRecord(
                        spec=RunSpec.from_dict(payload["spec"]),
                        signature=payload["signature"],
                        kind=FailureKind(payload["kind"]),
                        error_type=payload["error_type"],
                        message=payload["message"],
                        traceback=payload.get("traceback", ""),
                        attempts=int(payload.get("attempts", 1)),
                    )
                )
            except FileNotFoundError:
                continue
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.unreadable += 1
                continue
        return records

    def clear_failed(self) -> int:
        """Forget quarantined jobs so they can be re-submitted."""
        removed = 0
        for path in self.failed_directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def stats(self) -> Dict[str, float]:
        return {
            "queue_submitted": float(self.submitted),
            "queue_dedupe_hits": float(self.dedupe_hits),
            "queue_completed": float(self.completed),
            "queue_failed": float(self.failed),
            "queue_unreadable": float(self.unreadable),
            "queue_depth": float(len(self.pending_signatures())),
        }


# --------------------------------------------------------------------------- #
# The service
# --------------------------------------------------------------------------- #
class SweepService:
    """One client's handle on the shared sweep service root.

    Wires the shared :class:`ResultStore`, this client's
    :class:`SweepJournal`, the :class:`JobQueue` and the
    :class:`LeaseManager` around a supervised :class:`SweepEngine`; queue
    and lease counters are registered into :meth:`SweepEngine.summary`, so
    ``lease_acquired`` / ``queue_dedupe_hits`` / ``store_races_lost`` flow
    through the same stats channel as every other counter.

    Any number of ``SweepService`` instances — across processes — may
    point at the same root concurrently; that is the point.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        client_id: Optional[str] = None,
        max_workers: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        group_timeout: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        stale_after: float = DEFAULT_STALE_AFTER,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_store_dir()
        self.client_id = client_id if client_id else f"client-{os.getpid()}"
        self.store = ResultStore(self.root)
        self.journal = SweepJournal(
            default_journal_path(self.root), client_id=self.client_id
        )
        self.queue = JobQueue(self.root / "queue")
        self.leases = LeaseManager(
            self.root / "leases",
            self.client_id,
            stale_after=stale_after,
            injector=fault_injector,
        )
        self.engine = SweepEngine(
            store=self.store,
            max_workers=max_workers,
            retry_policy=retry_policy,
            group_timeout=group_timeout,
            journal=self.journal,
            fault_injector=fault_injector,
        )
        self.engine.register_stats(self.queue.stats)
        self.engine.register_stats(self.leases.stats)
        self.engine.register_stats(self._service_stats)
        #: Heartbeat cadence: several beats per staleness window, so a
        #: healthy run is never reclaimed from under a live client.
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None
            else max(0.02, float(stale_after) / 4.0)
        )
        self.served_from_store = 0
        self.single_flight_rechecks = 0

    # ------------------------------------------------------------------ #
    def _service_stats(self) -> Dict[str, float]:
        return {
            "service_served_from_store": float(self.served_from_store),
            "service_single_flight_rechecks": float(self.single_flight_rechecks),
        }

    # ------------------------------------------------------------------ #
    def submit(self, plan: SweepPlan) -> Dict[str, int]:
        """Queue every spec of ``plan`` idempotently.

        A spec whose result already sits in the shared store is not queued
        (``already_done``); one already queued by any client is a counted
        ``deduped``.  Returns the receipt ``{submitted, deduped,
        already_done}``.
        """
        receipt = {"submitted": 0, "deduped": 0, "already_done": 0}
        for spec in plan:
            if self.store.load(spec) is not None:
                receipt["already_done"] += 1
                continue
            if self.queue.submit_spec(spec):
                receipt["submitted"] += 1
            else:
                receipt["deduped"] += 1
        return receipt

    # ------------------------------------------------------------------ #
    def _process_one(self, spec: RunSpec) -> int:
        """Resolve one queued job; returns 1 when done/failed, 0 if skipped."""
        # Store fast path: another client finished it — just retire the job.
        if self.store.load(spec) is not None:
            if self.queue.mark_done(spec):
                self.served_from_store += 1
            return 1
        lease = self.leases.acquire(spec.signature())
        if lease is None:
            return 0  # a live client is on it; its result will serve us
        try:
            # Single-flight double-check: the previous holder may have
            # published between our store miss and our lease win.
            if self.store.load(spec) is not None:
                self.single_flight_rechecks += 1
                self.queue.mark_done(spec)
                return 1
            with _HeartbeatPump(self.leases, lease, self.heartbeat_interval):
                sweep = self.engine.run(SweepPlan([spec]))
            record = sweep.failed.get(spec)
            if record is not None:
                self.queue.mark_failed(record)
            else:
                self.queue.mark_done(spec)
            return 1
        except Exception as error:
            # Service-level failure (store I/O, journal I/O, …): same
            # classify_failure routing as the engine's own error paths.
            self.queue.mark_failed(FailureRecord.from_exception(spec, error, 1))
            return 1
        finally:
            self.leases.release(lease)

    def process_pending(self) -> int:
        """One pass over the queue; returns the number of jobs resolved."""
        resolved = 0
        for spec in self.queue.pending():
            resolved += self._process_one(spec)
        return resolved

    def drain(
        self, timeout: Optional[float] = None, poll_interval: float = 0.05
    ) -> int:
        """Process until the queue is empty (or ``timeout`` expires).

        Jobs leased by other live clients are waited on — their results
        arrive through the shared store and retire the job here.
        """
        self.leases.cleanup_tombstones()
        deadline = None if timeout is None else time.monotonic() + timeout
        processed = 0
        while True:
            processed += self.process_pending()
            if not self.queue.pending_signatures():
                return processed
            if deadline is not None and time.monotonic() >= deadline:
                return processed
            time.sleep(poll_interval)

    def serve(
        self, idle_exit: Optional[float] = None, poll_interval: float = 0.1
    ) -> int:
        """Execute jobs as they arrive; exit after ``idle_exit`` idle seconds.

        With ``idle_exit=None`` this loops forever (a long-lived server);
        tests and CI pass a small idle window.
        """
        self.leases.cleanup_tombstones()
        idle_since = time.monotonic()
        processed = 0
        while True:
            resolved = self.process_pending()
            processed += resolved
            if resolved:
                idle_since = time.monotonic()
            elif (
                not self.queue.pending_signatures()
                and idle_exit is not None
                and time.monotonic() - idle_since >= idle_exit
            ):
                return processed
            time.sleep(poll_interval)

    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, float]:
        """Flat counter snapshot: engine summary + live queue/lease state."""
        summary = self.engine.summary()
        summary["queue_pending"] = float(len(self.queue.pending_signatures()))
        summary["queue_failed_records"] = float(len(self.queue.failed_records()))
        summary["leases_active"] = float(len(self.leases.active()))
        summary["store_entries"] = float(
            len(list(self.store.directory.glob("*.json")))
        )
        return summary

    def format_status(self) -> str:
        """Human-readable status including the cross-client failure report."""
        lines = [f"sweep service status — root {self.root}"]
        for key, value in sorted(self.status().items()):
            lines.append(f"  {key:32s} {value:g}")
        lines.append("")
        lines.append(format_failure_report(self.queue.failed_records()))
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Spawn-safe client runner (stress tests / benchmarks)
# --------------------------------------------------------------------------- #
def _outcome(result) -> Dict[str, object]:
    """Bit-comparable, picklable digest of one training result."""
    return {
        "loss_history": list(result.loss_history),
        "train_accuracy_history": list(result.train_accuracy_history),
        "test_accuracy_history": list(result.test_accuracy_history),
        "final_test_accuracy": result.final_test_accuracy,
    }


def run_client(payload: Dict) -> Dict:
    """One service client, driveable from a spawned process.

    ``payload`` keys (all JSON-able, so multiprocessing spawn can ship it):

    - ``root`` (str, required): shared service root directory.
    - ``client_id`` (str, required): this client's id.
    - ``spec_dicts`` (list, required): ``RunSpec.to_dict()`` payloads the
      client submits.
    - ``rounds`` (int, default 1): how many times to re-submit the same
      plan (re-submissions are dedupe hits — the overlap knob for the
      dedupe-rate benchmark).
    - ``drain`` (bool, default True): whether to execute after submitting.
    - ``stale_after`` / ``heartbeat_interval`` / ``max_attempts`` /
      ``drain_timeout``: tuning knobs.
    - ``kill_lease_holder`` / ``freeze_heartbeat_for`` /
      ``corrupt_lease_for``: service-chaos hooks forwarded to
      :class:`FaultInjector` (a killed client never returns — the parent
      observes exit code 137 and the surviving lease file).

    Returns the client's receipts, engine summary and per-signature
    outcomes (loaded from the shared store, so every client reports the
    same bits for the same signature).
    """
    injector = None
    if (
        payload.get("kill_lease_holder")
        or payload.get("freeze_heartbeat_for")
        or payload.get("corrupt_lease_for")
    ):
        injector = FaultInjector(
            kill_lease_holder=payload.get("kill_lease_holder"),
            freeze_heartbeat_for=tuple(payload.get("freeze_heartbeat_for", ())),
            corrupt_lease_for=tuple(payload.get("corrupt_lease_for", ())),
        )
    service = SweepService(
        root=Path(payload["root"]),
        client_id=payload["client_id"],
        retry_policy=RetryPolicy(max_attempts=int(payload.get("max_attempts", 3))),
        fault_injector=injector,
        stale_after=float(payload.get("stale_after", DEFAULT_STALE_AFTER)),
        heartbeat_interval=payload.get("heartbeat_interval"),
    )
    specs = [RunSpec.from_dict(d) for d in payload["spec_dicts"]]
    plan = SweepPlan(specs)
    receipt = {"submitted": 0, "deduped": 0, "already_done": 0}
    for _ in range(int(payload.get("rounds", 1))):
        round_receipt = service.submit(plan)
        for key, value in round_receipt.items():
            receipt[key] += value
    processed = 0
    if payload.get("drain", True):
        processed = service.drain(timeout=payload.get("drain_timeout"))
    outcomes: Dict[str, Dict] = {}
    for spec in specs:
        result = service.store.load(spec)
        if result is not None:
            outcomes[spec.signature()] = _outcome(result)
    return {
        "client_id": payload["client_id"],
        "receipt": receipt,
        "processed": processed,
        "summary": service.engine.summary(),
        "outcomes": outcomes,
    }


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def _figure_plan(names: List[str], seeds: List[int], scale: str, epochs) -> SweepPlan:
    """Union plan of the named training figures across ``seeds``."""
    # Lazy import: __main__ imports this module's command list; importing
    # __main__ eagerly here would be circular.
    from repro.experiments.__main__ import TRAINING_FIGURES

    unknown = [name for name in names if name not in TRAINING_FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figures: {', '.join(unknown)} "
            f"(available: {', '.join(TRAINING_FIGURES)})"
        )
    plan = SweepPlan([])
    for name in names:
        plan_fn = TRAINING_FIGURES[name][0]
        for seed in seeds:
            plan = plan + plan_fn(seed=seed, scale=scale, epochs=epochs)
    return plan


def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Crash-safe multi-client sweep service (shared run cache).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--root",
            default=None,
            help="service root (default: the run cache, REPRO_RUNCACHE_DIR aware)",
        )
        p.add_argument(
            "--client-id", default=None, help="client identity (default: client-<pid>)"
        )

    submit = sub.add_parser("submit", help="queue figure grids idempotently")
    submit.add_argument("figures", nargs="+", help="training figures to queue")
    submit.add_argument("--seeds", type=int, nargs="+", default=[0])
    submit.add_argument("--scale", default="ci", choices=("ci", "paper"))
    submit.add_argument("--epochs", type=int, default=None)
    common(submit)

    serve = sub.add_parser("serve", help="execute queued jobs as they arrive")
    serve.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: serve forever)",
    )
    serve.add_argument("--max-attempts", type=int, default=3)
    serve.add_argument("--timeout", type=float, default=None)
    serve.add_argument("--workers", type=int, default=1)
    common(serve)

    drain = sub.add_parser("drain", help="execute until the queue is empty")
    drain.add_argument(
        "--timeout", type=float, default=None, help="give up after this many seconds"
    )
    drain.add_argument("--max-attempts", type=int, default=3)
    common(drain)

    status = sub.add_parser("status", help="counters + cross-client failure report")
    common(status)

    return parser


def cli_main(argv: List[str]) -> int:
    args = build_service_parser().parse_args(argv)
    root = Path(args.root) if args.root else None

    if args.command == "submit":
        service = SweepService(root=root, client_id=args.client_id)
        plan = _figure_plan(args.figures, args.seeds, args.scale, args.epochs)
        receipt = service.submit(plan)
        print(
            f"submitted {receipt['submitted']} job(s) "
            f"({receipt['deduped']} deduped, "
            f"{receipt['already_done']} already done) — root {service.root}"
        )
        return 0

    if args.command == "serve":
        service = SweepService(
            root=root,
            client_id=args.client_id,
            max_workers=args.workers,
            retry_policy=RetryPolicy(max_attempts=args.max_attempts),
            group_timeout=args.timeout,
        )
        try:
            processed = service.serve(idle_exit=args.idle_exit)
        except KeyboardInterrupt:
            print("\nserver interrupted — queued jobs remain claimable")
            return 130
        print(f"served {processed} job(s)")
        print(service.engine.format_summary())
        return 0

    if args.command == "drain":
        service = SweepService(
            root=root,
            client_id=args.client_id,
            retry_policy=RetryPolicy(max_attempts=args.max_attempts),
        )
        processed = service.drain(timeout=args.timeout)
        print(f"drained {processed} job(s)")
        print(service.engine.format_summary())
        failures = service.queue.failed_records()
        if failures:
            print()
            print(format_failure_report(failures))
            return 1
        if service.queue.pending_signatures():
            print("queue not empty (timeout) — rerun drain to continue")
            return 1
        return 0

    # status
    service = SweepService(root=root, client_id=args.client_id)
    print(service.format_status())
    return 0
