"""FARe: Fault-Aware GNN Training on ReRAM-based PIM Accelerators.

A from-scratch reproduction of the DATE 2024 paper.  The package is organised
as a stack of substrates with the paper's contribution on top:

* :mod:`repro.tensor` — numpy autograd engine.
* :mod:`repro.nn` — GCN / GAT / GraphSAGE models, losses, metrics.
* :mod:`repro.graph` — sparse matrices, partitioning, batching, datasets.
* :mod:`repro.hardware` — ReRAM crossbars, stuck-at faults, BIST, timing.
* :mod:`repro.matching` — b-Suitor / Hungarian / greedy assignment solvers.
* :mod:`repro.core` — the FARe framework and the baseline strategies.
* :mod:`repro.pipeline` — faulty pipelined training and the timing model.
* :mod:`repro.experiments` — drivers regenerating every paper table/figure.

Quickstart
----------
>>> from repro import api
>>> result = api.train_on_faulty_hardware(
...     dataset="reddit", model="gcn", strategy="fare",
...     fault_density=0.05, epochs=5, scale="ci", seed=0)
>>> 0.0 <= result.test_accuracy <= 1.0
True
"""

__version__ = "1.0.0"

from repro import api

__all__ = ["api", "__version__"]
