"""Training pipeline: hardware mapping engine, faulty trainer, timing model.

* :mod:`~repro.pipeline.mapping_engine` — maps GNN weights and per-batch
  adjacency blocks onto crossbars and produces the faulty values the model
  actually computes with.
* :mod:`~repro.pipeline.trainer` — the mini-batch training loop with strategy
  hooks, post-deployment fault injection, BIST re-scans and evaluation.
* :mod:`~repro.pipeline.timing` — the pipelined-execution timing model used
  for the Fig. 7 performance comparison.
"""

from repro.pipeline.mapping_engine import (
    AdjacencyCrossbarMapper,
    HardwareEnvironment,
    WeightCrossbarMapper,
)
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig, TrainingResult
from repro.pipeline.timing import (
    TimingBreakdown,
    TimingInputs,
    estimate_execution_time,
    timing_inputs_from_spec,
)

__all__ = [
    "AdjacencyCrossbarMapper",
    "WeightCrossbarMapper",
    "HardwareEnvironment",
    "FaultyTrainer",
    "TrainingConfig",
    "TrainingResult",
    "TimingBreakdown",
    "TimingInputs",
    "estimate_execution_time",
    "timing_inputs_from_spec",
]
