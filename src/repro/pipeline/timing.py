"""Pipelined-execution timing model (paper Section V-E, Fig. 7).

The accelerator trains with a PipeLayer-style pipeline: the ``N`` input
subgraphs of an epoch stream through ``S`` pipeline stages, so one epoch
takes ``(N + S - 1) × d`` where ``d`` is the stage delay.  The
fault-tolerance strategies perturb this baseline in different ways:

* **Weight clipping** adds one pipeline stage (the comparator/mux stage), so
  the depth becomes ``N + S`` — negligible because ``N >> S``.
* **FARe** additionally pays a one-time host-side pre-processing cost to run
  Algorithm 1 (~1 % of training time) and, when post-deployment faults are
  tracked, the BIST's 0.13 % per-epoch overhead.  The post-deployment row
  re-permutation runs on the host concurrently with ReRAM execution and adds
  no pipeline time.
* **Neuron reordering (NR)** stalls the pipeline after *every* mini-batch: the
  updated weights must be re-ordered on the host and re-programmed into the
  weight crossbars before the next batch can start.

All Fig. 7 numbers are reported normalised to fault-free training, so only
the ratios between these terms matter; the absolute constants come from
:class:`~repro.hardware.energy.TileCostModel`.

When the strategy runs Algorithm 1 through the batched
:class:`~repro.core.cost_engine.MappingCostEngine`, the engine's cache
hit/miss and skipped-work counters are surfaced on
:attr:`TimingBreakdown.components` (``mapping_cache_hits`` etc.), so the
per-run timing record also documents how much mapping work was avoided.
The same channel carries the hardware-state cache counters (``hw_*``) and
the segment-reduce kernel counters (``kernel_*`` — reduceat scatter/gather
calls, CSR transpose-memo hits) whenever a trainer has attached them to the
strategy, for *every* strategy, not just FARe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.strategies import Strategy
from repro.graph.datasets import DATASET_REGISTRY, DatasetSpec
from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig
from repro.hardware.energy import TileCostModel


@dataclass(frozen=True)
class TimingInputs:
    """Workload counts consumed by the timing model.

    The counts can come either from an actual :class:`FaultyTrainer` run
    (:meth:`TimingInputs.from_counters`) or from the paper-scale dataset
    specification (:func:`timing_inputs_from_spec`), which is how Fig. 7 is
    regenerated without training the full-size datasets.

    Attributes
    ----------
    num_pipeline_units:
        Number of subgraphs streamed through the pipeline per epoch
        (the paper's ``N``).
    num_batches:
        Number of mini-batches per epoch (each groups several subgraphs);
        this is the granularity at which the NR baseline stalls.
    avg_subgraph_nodes:
        Average node count of one pipeline unit, which sets the stage delay.
    """

    num_pipeline_units: int
    num_batches: int
    epochs: int
    avg_subgraph_nodes: float
    blocks_per_batch: float
    num_adjacency_crossbars: int
    num_weight_crossbars: int
    pipeline_stages: int = 5
    reorder_units: int = 1024
    track_post_deployment: bool = False

    @classmethod
    def from_counters(
        cls,
        counters: Dict[str, float],
        pipeline_stages: int = 5,
        track_post_deployment: bool = False,
    ) -> "TimingInputs":
        """Build inputs from the counters a :class:`FaultyTrainer` collected."""
        num_batches = int(counters.get("num_batches", 1))
        total_blocks = counters.get("total_blocks", float(num_batches))
        return cls(
            num_pipeline_units=num_batches,
            num_batches=num_batches,
            epochs=int(counters.get("epochs", 1)),
            avg_subgraph_nodes=float(counters.get("avg_batch_nodes", 1.0)),
            blocks_per_batch=total_blocks / max(num_batches, 1),
            num_adjacency_crossbars=int(counters.get("num_adjacency_crossbars", 1)),
            num_weight_crossbars=int(counters.get("num_weight_crossbars", 1)),
            pipeline_stages=pipeline_stages,
            reorder_units=int(counters.get("reorder_units", 1024)),
            track_post_deployment=track_post_deployment,
        )


@dataclass
class TimingBreakdown:
    """Execution-time components of one training run (seconds)."""

    strategy: str
    pipeline_time: float
    clipping_stage_time: float = 0.0
    preprocessing_time: float = 0.0
    bist_time: float = 0.0
    reorder_stall_time: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.pipeline_time
            + self.clipping_stage_time
            + self.preprocessing_time
            + self.bist_time
            + self.reorder_stall_time
        )

    def normalized(self, baseline: "TimingBreakdown") -> float:
        """Execution time normalised to ``baseline`` (fault-free)."""
        if baseline.total <= 0:
            raise ValueError("baseline total time must be positive")
        return self.total / baseline.total


def _stage_delay_s(inputs: TimingInputs, cost_model: TileCostModel) -> float:
    """Delay of one pipeline stage: stream every node vector of the subgraph
    through the crossbars plus the (double-buffered) adjacency block write."""
    mvm_stream = inputs.avg_subgraph_nodes * cost_model.mvm_latency_s()
    return mvm_stream + cost_model.crossbar_write_latency_s()


def estimate_execution_time(
    strategy: Strategy,
    inputs: TimingInputs,
    cost_model: Optional[TileCostModel] = None,
    config: ReRAMConfig = DEFAULT_CONFIG,
) -> TimingBreakdown:
    """Estimate the end-to-end training time for ``strategy`` on ``inputs``."""
    cost_model = cost_model or TileCostModel(config=config)
    stage_delay = _stage_delay_s(inputs, cost_model)
    depth = inputs.num_pipeline_units + inputs.pipeline_stages - 1
    pipeline_time = inputs.epochs * depth * stage_delay

    breakdown = TimingBreakdown(strategy=strategy.name, pipeline_time=pipeline_time)
    breakdown.components["stage_delay_s"] = stage_delay
    # Cache/kernel counters flow for every strategy that has any attached
    # (mapping_* from the cost engine, hw_* from the hardware-state cache,
    # kernel_* from the segment-reduce kernel layer).
    engine_stats = strategy.mapping_engine_stats()
    if engine_stats:
        breakdown.components.update(engine_stats)

    if strategy.uses_clipping:
        # One extra pipeline stage per epoch (depth N + S instead of N + S - 1).
        breakdown.clipping_stage_time = inputs.epochs * stage_delay

    if strategy.uses_fault_aware_mapping:
        total_blocks = inputs.num_batches * inputs.blocks_per_batch
        breakdown.preprocessing_time = cost_model.mapping_preprocess_time_s(
            int(total_blocks), inputs.num_adjacency_crossbars
        )
        if inputs.track_post_deployment:
            # BIST re-scan at the end of every epoch (~0.13 % of epoch time).
            breakdown.bist_time = (
                inputs.epochs * depth * stage_delay * config.bist_time_overhead
            )

    if strategy.reorders_every_batch:
        # The pipeline stalls after every batch: the reordered weights must be
        # re-programmed into every weight crossbar (serialised writes, one
        # write driver per tile) and the host recomputes the permutation.
        write_parallelism = max(config.num_tiles, 1)
        reprogram = (
            inputs.num_weight_crossbars / write_parallelism
        ) * cost_model.crossbar_write_latency_s()
        host = cost_model.neuron_reorder_time_s(inputs.reorder_units)
        breakdown.reorder_stall_time = (
            inputs.epochs * inputs.num_batches * (reprogram + host)
        )
        breakdown.components["reorder_stall_per_batch_s"] = reprogram + host

    return breakdown


# --------------------------------------------------------------------------- #
# Paper-scale inputs for Fig. 7
# --------------------------------------------------------------------------- #
#: Input feature dimensionality of the real datasets (used only by the
#: analytical Fig. 7 timing model, which never materialises the graphs).
PAPER_FEATURE_DIMS: Dict[str, int] = {
    "ppi": 50,
    "reddit": 602,
    "amazon2m": 100,
    "ogbl": 128,
}

#: Output dimensionality of the real datasets (classes / label count).
PAPER_CLASS_DIMS: Dict[str, int] = {
    "ppi": 121,
    "reddit": 41,
    "amazon2m": 47,
    "ogbl": 40,
}


def timing_inputs_from_spec(
    spec: DatasetSpec,
    hidden_features: int = 1024,
    epochs: int = 100,
    pipeline_stages: int = 5,
    config: ReRAMConfig = DEFAULT_CONFIG,
    track_post_deployment: bool = False,
) -> TimingInputs:
    """Build paper-scale :class:`TimingInputs` from a Table II dataset spec."""
    num_pipeline_units = spec.paper_partitions
    num_batches = max(1, spec.paper_partitions // spec.paper_batch)
    avg_subgraph_nodes = spec.paper_nodes / max(num_pipeline_units, 1)
    batch_nodes = avg_subgraph_nodes * spec.paper_batch
    blocks_per_side = max(1, -(-int(batch_nodes) // config.crossbar_rows))
    blocks_per_batch = float(blocks_per_side * blocks_per_side)

    features = PAPER_FEATURE_DIMS.get(spec.name, 128)
    num_classes = PAPER_CLASS_DIMS.get(spec.name, 40)
    cells_per_weight = config.cells_per_weight

    def crossbars_for(rows: int, cols: int) -> int:
        row_tiles = -(-rows // config.crossbar_rows)
        col_tiles = -(-(cols * cells_per_weight) // config.crossbar_cols)
        return row_tiles * col_tiles

    num_weight_crossbars = crossbars_for(features, hidden_features) + crossbars_for(
        hidden_features, num_classes
    )
    num_adjacency_crossbars = max(1, config.crossbar_count - num_weight_crossbars)

    return TimingInputs(
        num_pipeline_units=num_pipeline_units,
        num_batches=num_batches,
        epochs=epochs,
        avg_subgraph_nodes=avg_subgraph_nodes,
        blocks_per_batch=blocks_per_batch,
        num_adjacency_crossbars=num_adjacency_crossbars,
        num_weight_crossbars=num_weight_crossbars,
        pipeline_stages=pipeline_stages,
        reorder_units=hidden_features,
        track_post_deployment=track_post_deployment,
    )


def fig7_paper_datasets() -> Dict[str, DatasetSpec]:
    """The dataset/model pairs of Fig. 7, keyed by their x-axis labels."""
    return {
        "Ogbl (SAGE)": DATASET_REGISTRY["ogbl"],
        "Reddit (GCN)": DATASET_REGISTRY["reddit"],
        "PPI (GAT)": DATASET_REGISTRY["ppi"],
        "Amazon2M (GCN)": DATASET_REGISTRY["amazon2m"],
    }
