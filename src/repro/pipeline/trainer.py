"""Mini-batch GNN training on (faulty) ReRAM hardware.

:class:`FaultyTrainer` reproduces the training procedure of Section III/IV:

1. **Pre-processing (host)** — the graph is partitioned, mini-batches are
   formed from cluster groups, the BIST reports the pre-deployment fault maps
   and the active strategy plans the adjacency block → crossbar mapping.
2. **Training (accelerator)** — for every batch the adjacency blocks are
   programmed onto their assigned crossbars and read back (faults included),
   weights are programmed/read through the weight mapper (faults + optional
   clipping), the model computes forward/backward with those effective
   values and the digital optimiser updates the master weights.
3. **Epoch end** — optional post-deployment faults are injected, the BIST
   re-scans, the strategy refreshes its mapping, and train/test accuracy are
   recorded.

The trainer also accumulates the counters (batches, blocks, crossbars,
reordering events) the Fig. 7 timing model consumes.

Performance model: the per-batch hardware *simulation* (faulty adjacency
read-back, effective-weight pipeline) is served from the versioned
:class:`~repro.core.hw_state.HardwareStateCache` — recomputed only when the
underlying state changes (fault injection, BIST re-scan, plan refresh,
optimiser step), while the simulated write/endurance accounting still
advances per batch exactly as on the uncached path.
``use_hw_state_cache=False`` restores the seed per-batch recomputation
bit-for-bit (equivalence enforced by ``tests/test_core_hw_state.py``,
throughput tracked by ``benchmarks/test_bench_train_epoch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.hw_state import HardwareStateCache
from repro.core.mapping import BatchMapping
from repro.core.strategies import Strategy
from repro.graph.graph import Graph
from repro.graph.partition import STREAMING_NODE_THRESHOLD, PartitionResult
from repro.graph.sampling import ClusterBatch, ClusterBatchSampler
from repro.graph.sparse import CSRMatrix
from repro.hardware.bist import BISTReport
from repro.hardware.endurance import PostDeploymentSchedule
from repro.nn.base import BatchInputs, GNNModel
from repro.nn.factory import build_model
from repro.nn.losses import (
    bce_with_logits,
    bce_with_logits_segmented,
    cross_entropy,
    cross_entropy_segmented,
)
from repro.nn.metrics import evaluate_predictions
from repro.pipeline.mapping_engine import (
    AdjacencyCrossbarMapper,
    HardwareEnvironment,
    WeightCrossbarMapper,
)
from repro.tensor import kernels
from repro.tensor.kernels import KernelStatsView
from repro.tensor.optim import Adam, SGD
from repro.tensor.tensor import no_grad
from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng, spawn_rngs

logger = get_logger("pipeline.trainer")


@dataclass
class TrainingConfig:
    """Hyperparameters of one training run (Table II defaults, scaled)."""

    epochs: int = 20
    learning_rate: float = 0.01
    hidden_features: int = 32
    dropout: float = 0.2
    optimizer: str = "adam"
    num_parts: int = 12
    batch_clusters: int = 4
    eval_every: int = 1
    seed: int = 0
    #: Node budget of one batched-eval bucket: consecutive mini-batches are
    #: fused into one block-diagonal forward until adding the next batch
    #: would exceed this many nodes (a bucket always holds ≥ 1 batch).
    eval_bucket_nodes: int = 4096
    #: Node budget of one *training* bucket (``FaultyTrainer`` train modes
    #: ``"accumulate"``/``"fused"``): consecutive mini-batches whose
    #: gradients are accumulated into one optimizer step — fused into one
    #: block-diagonal forward in the fused mode.  Same layout rule as
    #: ``eval_bucket_nodes``; ``train_bucket_nodes=1`` degenerates every
    #: bucket to a single batch (the seed step granularity).
    train_bucket_nodes: int = 4096

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.eval_bucket_nodes <= 0:
            raise ValueError("eval_bucket_nodes must be positive")
        if self.train_bucket_nodes <= 0:
            raise ValueError("train_bucket_nodes must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_clusters > self.num_parts:
            raise ValueError("batch_clusters cannot exceed num_parts")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {self.optimizer}")


@dataclass
class TrainerArtifacts:
    """Precomputed preprocessing inputs a trainer may reuse instead of rebuild.

    Produced by the sweep engine (:mod:`repro.experiments.sweeps`), which
    content-keys these artifacts and shares them across the runs of a grid.
    Every field is optional and independent; a missing field is computed the
    usual way.  All supplied objects are consumed **read-only** — training
    never mutates batches, blocks, BIST reports or plans — so one artifact
    set may feed many trainers.  Supplying them does not change the training
    outcome (bit-identical histories; enforced by
    ``tests/test_experiments_sweeps.py``).
    """

    #: Cluster partition for the sampler (skips ``partition_graph``).
    partition: Optional[PartitionResult] = None
    #: The fixed mini-batch list (skips sampler construction entirely).
    batches: Optional[List[ClusterBatch]] = None
    #: Per-batch adjacency blocks + grid shapes (skips ``decompose``).
    blocks_per_batch: Optional[List[List[np.ndarray]]] = None
    grids: Optional[List] = None
    #: Pre-deployment scan result (skips the BIST scan).
    bist_report: Optional[BISTReport] = None
    #: Adjacency mapping plans (skips ``strategy.plan_adjacency``).
    plans: Optional[List[BatchMapping]] = None


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    strategy: str
    dataset: str
    model: str
    epochs_run: int
    train_accuracy_history: List[float] = field(default_factory=list)
    test_accuracy_history: List[float] = field(default_factory=list)
    loss_history: List[float] = field(default_factory=list)
    final_train_accuracy: float = 0.0
    final_test_accuracy: float = 0.0
    fault_density: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    def summary_row(self) -> List:
        """Row used by the experiment tables."""
        return [
            self.dataset,
            self.model,
            self.strategy,
            self.fault_density,
            self.final_test_accuracy,
        ]


class FaultyTrainer:
    """Trains one GNN on one graph under one fault-handling strategy."""

    def __init__(
        self,
        graph: Graph,
        model_name: str,
        strategy: Strategy,
        config: TrainingConfig,
        hardware: Optional[HardwareEnvironment] = None,
        post_deployment: Optional[PostDeploymentSchedule] = None,
        use_hw_state_cache: bool = True,
        artifacts: Optional[TrainerArtifacts] = None,
        replan_on_rescan: bool = False,
        use_shared_eval: bool = True,
        use_batched_eval: bool = True,
        use_agg_precompute: bool = True,
        streaming_blocks: Optional[bool] = None,
        train_mode: str = "per_batch",
    ) -> None:
        self.graph = graph
        self.model_name = model_name.lower()
        self.strategy = strategy
        self.config = config
        self.hardware = hardware
        self.post_deployment = post_deployment
        self.artifacts = artifacts or TrainerArtifacts()
        #: Epoch-end reaction to the BIST re-scan: ``False`` (paper protocol)
        #: keeps the block → crossbar assignment Π and only refreshes row
        #: permutations; ``True`` re-plans the full mapping against the new
        #: fault maps via :meth:`Strategy.replan_adjacency` — warm-started
        #: from the previous plan when the strategy supports delta planning
        #: (the lifetime experiment's mode).
        self.replan_on_rescan = bool(replan_on_rescan)
        #: Epoch-cached hardware read-back (see :mod:`repro.core.hw_state`).
        #: ``False`` restores the seed per-batch recomputation path exactly —
        #: per-block program/read loops and the unfused weight pipeline — for
        #: the equivalence tests and the epoch-throughput benchmark baseline.
        self.use_hw_state_cache = bool(use_hw_state_cache)
        #: Multi-graph vectorised evaluation (see ``docs/ARCHITECTURE.md``,
        #: "Batched multi-graph training").  ``use_shared_eval`` computes the
        #: per-epoch train and test accuracy from one forward per batch (the
        #: logits do not depend on the split mask); ``use_batched_eval``
        #: additionally fuses consecutive batches into one block-diagonal
        #: forward per bucket; ``use_agg_precompute`` caches the
        #: weight-independent first-layer aggregation across steps.  All
        #: three ``False`` restores the seed per-split / per-batch loop
        #: bit-for-bit (the multigraph benchmark's baseline).
        self.use_shared_eval = bool(use_shared_eval)
        self.use_batched_eval = bool(use_batched_eval)
        self.use_agg_precompute = bool(use_agg_precompute)
        #: Memory-bounded block handling for huge graphs: when on, the dense
        #: per-batch adjacency blocks are decomposed *transiently* — once per
        #: batch during planning, then again inside ``apply_mapping`` on each
        #: hardware-state change — instead of being retained for the whole
        #: run (retention costs ``O(sum of padded batch-matrix bytes)``,
        #: ~12 GB at 10^6 nodes).  Plans are bit-identical to the retained
        #: path (every strategy plans per batch independently).  ``None``
        #: (auto) enables it at ``STREAMING_NODE_THRESHOLD`` nodes unless
        #: block artifacts are supplied; post-deployment fault reaction
        #: (:meth:`apply_fault_delta`) needs the retained blocks and raises
        #: in this mode.
        self.streaming_blocks = streaming_blocks
        #: Training-step granularity (see ``docs/ARCHITECTURE.md``, "Batched
        #: multi-graph training"):
        #:
        #: * ``"per_batch"`` (default) — the seed loop: one forward/backward/
        #:   optimizer step per mini-batch, bit-identical to HEAD.
        #: * ``"accumulate"`` — the reference bucket semantics: consecutive
        #:   batches are grouped into buckets capped at
        #:   ``config.train_bucket_nodes`` nodes; ``zero_grad`` runs once per
        #:   bucket, each member's loss backward accumulates into the shared
        #:   parameter gradients, and the optimizer steps once per bucket.
        #: * ``"fused"`` — same semantics as ``"accumulate"`` through one
        #:   block-diagonal forward per bucket and a segmented per-member
        #:   loss; gradients are the sum of the per-member reference
        #:   gradients (bit-identical structural reductions, round-off
        #:   contract where GEMMs/``reduceat`` reassociate).
        if train_mode not in ("per_batch", "accumulate", "fused"):
            raise ValueError(
                "train_mode must be 'per_batch', 'accumulate' or 'fused', "
                f"got {train_mode!r}"
            )
        self.train_mode = train_mode
        if strategy.requires_hardware and hardware is None:
            raise ValueError(
                f"strategy {strategy.name!r} requires a HardwareEnvironment"
            )

        rng_model, rng_sampler, self._train_rng = spawn_rngs(config.seed, 3)

        # Batch composition is fixed across epochs: the adjacency mapping is
        # computed once in pre-processing (Section IV-A).  The sampler stream
        # (`rng_sampler`) only feeds partitioning tie-breaks and the (unused
        # here) epoch shuffle, so injecting a precomputed partition or batch
        # list leaves the model/training streams — and the outcome — intact.
        if self.artifacts.batches is not None:
            self.sampler = None
            self.batches = list(self.artifacts.batches)
        else:
            self.sampler = ClusterBatchSampler(
                graph,
                num_parts=config.num_parts,
                batch_clusters=config.batch_clusters,
                seed=rng_sampler,
                partition=self.artifacts.partition,
            )
            self.batches = list(self.sampler.epoch(shuffle=False))

        self.model: GNNModel = build_model(
            self.model_name,
            in_features=graph.num_features,
            hidden_features=config.hidden_features,
            num_classes=graph.num_classes,
            dropout=config.dropout,
            rng=rng_model,
        )
        if config.optimizer == "adam":
            self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        else:
            self.optimizer = SGD(self.model.parameters(), lr=config.learning_rate, momentum=0.9)

        self._weight_mapper: Optional[WeightCrossbarMapper] = None
        self._adjacency_mapper: Optional[AdjacencyCrossbarMapper] = None
        self._hw_cache: Optional[HardwareStateCache] = None
        self._plans = None
        self._blocks_per_batch = None
        self._grids = None
        # Batched-eval state: the bucket layout is fixed (batch composition
        # never changes), the fused block-diagonal inputs are memoised per
        # bucket on the identity of the member adjacencies (stable while the
        # hardware state is stable, invalidated the moment a read-back
        # changes — same identity-keying as normalize_adjacency_cached).
        self._eval_buckets: Optional[List[List[int]]] = None
        self._fused_eval_cache: Dict[int, tuple] = {}
        self._batched_eval_forwards = 0
        # Batched-train state: bucket layout for the accumulate/fused modes,
        # the per-bucket workspace shared with eval (member offsets, fused
        # features/labels, loss segment plan — all hardware-independent,
        # built once per bucket), and the fused train-input memo keyed on
        # the hardware state like the eval one.  All invalidated together
        # when ``self.batches`` is replaced (see ``_check_bucket_staleness``).
        self._train_buckets: Optional[List[List[int]]] = None
        self._bucket_workspaces: Dict[tuple, dict] = {}
        self._fused_train_cache: Dict[tuple, tuple] = {}
        self._batched_train_buckets = 0
        self._train_fused_forwards = 0
        self._buckets_for = self.batches
        self.model.set_agg_precompute(self.use_agg_precompute)
        # Delta view of the process-wide segment-reduce kernel counters;
        # surfaces through Strategy.mapping_engine_stats() -> trainer
        # counters -> timing components, like the cost-engine and hw-state
        # cache stats.  train() re-baselines it so the reported numbers
        # cover exactly that run even when several trainers are constructed
        # up front.
        self.strategy.attach_kernel_stats(KernelStatsView())
        self._preprocess()

    # ------------------------------------------------------------------ #
    # Pre-processing phase
    # ------------------------------------------------------------------ #
    def _preprocess(self) -> None:
        if not self.strategy.requires_hardware:
            return
        hw = self.hardware
        self._weight_mapper = WeightCrossbarMapper(
            self.model,
            hw.weight_crossbars,
            hw.fmt,
            hw.config,
            use_fused=self.use_hw_state_cache,
        )
        self._adjacency_mapper = AdjacencyCrossbarMapper(
            hw.adjacency_crossbars, hw.config, use_batched=self.use_hw_state_cache
        )
        self._hw_cache = HardwareStateCache(
            self._adjacency_mapper,
            self._weight_mapper,
            enabled=self.use_hw_state_cache,
        )
        self.strategy.attach_hw_state_cache(self._hw_cache)
        streaming = self.streaming_blocks
        if streaming is None:
            streaming = (
                self.graph.num_nodes >= STREAMING_NODE_THRESHOLD
                and self.artifacts.blocks_per_batch is None
            )
        elif streaming and self.artifacts.blocks_per_batch is not None:
            raise ValueError(
                "streaming_blocks=True conflicts with supplied block artifacts"
            )
        if streaming:
            self._preprocess_streaming(hw)
            return
        if (
            self.artifacts.blocks_per_batch is not None
            and self.artifacts.grids is not None
        ):
            if len(self.artifacts.blocks_per_batch) != len(self.batches) or len(
                self.artifacts.grids
            ) != len(self.batches):
                raise ValueError(
                    f"artifacts cover {len(self.artifacts.blocks_per_batch)} "
                    f"block lists / {len(self.artifacts.grids)} grids but the "
                    f"sampler produced {len(self.batches)} batches"
                )
            self._blocks_per_batch = self.artifacts.blocks_per_batch
            self._grids = self.artifacts.grids
        else:
            self._blocks_per_batch = []
            self._grids = []
            for batch in self.batches:
                blocks, grid = self._adjacency_mapper.decompose(batch.subgraph.adjacency)
                self._blocks_per_batch.append(blocks)
                self._grids.append(grid)
        if self.artifacts.plans is not None:
            if len(self.artifacts.plans) != len(self.batches):
                raise ValueError(
                    f"artifacts supply {len(self.artifacts.plans)} mapping "
                    f"plans but the sampler produced {len(self.batches)} batches"
                )
            self._plans = list(self.artifacts.plans)
            return
        report = self.artifacts.bist_report
        if report is None:
            report = hw.bist.scan(self._adjacency_mapper.crossbars)
        self._plans = self.strategy.plan_adjacency(
            self._blocks_per_batch,
            report.fault_maps,
            self._adjacency_mapper.crossbar_ids,
            hw.config.crossbar_rows,
        )

    def _preprocess_streaming(self, hw: HardwareEnvironment) -> None:
        """Plan without retaining blocks: decompose each batch transiently.

        Every strategy plans its batches independently (one
        ``BatchMapping`` per batch from that batch's blocks alone), so
        planning batch-by-batch over a transient decomposition yields plans
        bit-identical to the retained path while peak memory holds one
        batch's blocks instead of all of them.  ``self._blocks_per_batch``
        stays ``None`` — the marker :meth:`_batch_inputs` uses to let
        ``apply_mapping`` re-decompose on hardware-state changes (served
        from the epoch cache in between).
        """
        self._blocks_per_batch = None
        rows = hw.config.crossbar_rows
        cols = hw.config.crossbar_cols
        self._grids = [
            (-(-batch.num_nodes // rows), -(-batch.num_nodes // cols))
            for batch in self.batches
        ]
        if self.artifacts.plans is not None:
            if len(self.artifacts.plans) != len(self.batches):
                raise ValueError(
                    f"artifacts supply {len(self.artifacts.plans)} mapping "
                    f"plans but the sampler produced {len(self.batches)} batches"
                )
            self._plans = list(self.artifacts.plans)
            return
        report = self.artifacts.bist_report
        if report is None:
            report = hw.bist.scan(self._adjacency_mapper.crossbars)
        crossbar_ids = self._adjacency_mapper.crossbar_ids
        plans: List[BatchMapping] = []
        for batch in self.batches:
            blocks, _ = self._adjacency_mapper.decompose(batch.subgraph.adjacency)
            plans.extend(
                self.strategy.plan_adjacency(
                    [blocks], report.fault_maps, crossbar_ids, rows
                )
            )
        self._plans = plans

    # ------------------------------------------------------------------ #
    # Hardware views
    # ------------------------------------------------------------------ #
    def _weight_transform(self, name: str, values: np.ndarray) -> np.ndarray:
        layout_names = self._weight_mapper.layouts
        if name not in layout_names:
            return values
        # Evaluation re-reads the crossbars without re-programming them, so
        # only training-mode calls count as weight-write events (the Fig. 7
        # timing counters track training writes).
        training = self.model.training

        def compute() -> np.ndarray:
            permutation = self.strategy.weight_storage_permutation(
                name,
                values,
                lambda: self._weight_mapper.row_mismatch_cost(name, values),
            )
            effective = self._weight_mapper.effective_weights(
                name, values, row_permutation=permutation, count_write=training
            )
            return self.strategy.transform_effective_weights(name, effective)

        key = (self.optimizer.param_version, self._weight_mapper.fault_version)
        return self._hw_cache.effective_weights(
            name, key, compute, count_hit_write=training
        )

    def _batch_inputs(self, batch_index: int) -> BatchInputs:
        batch = self.batches[batch_index]
        adjacency = batch.subgraph.adjacency
        if self.strategy.requires_hardware:
            # Streaming mode retains no blocks: apply_mapping re-decomposes
            # transiently on each state change (cache hits skip it entirely).
            retained = self._blocks_per_batch is not None
            adjacency = self._hw_cache.batch_adjacency(
                batch_index,
                adjacency,
                self._plans[batch_index],
                blocks=self._blocks_per_batch[batch_index] if retained else None,
                grid=self._grids[batch_index] if retained else None,
            )
        return BatchInputs(features=batch.subgraph.features, adjacency=adjacency)

    def _loss(self, logits, labels, mask):
        if self.graph.is_multilabel:
            return bce_with_logits(logits, labels, mask)
        return cross_entropy(logits, labels, mask)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train(self) -> TrainingResult:
        """Run the full training loop and return the result record."""
        config = self.config
        result = TrainingResult(
            strategy=self.strategy.name,
            dataset=self.graph.name,
            model=self.model_name,
            epochs_run=0,
            fault_density=(
                self.hardware.overall_fault_density() if self.hardware else 0.0
            ),
        )
        if self.strategy.requires_hardware:
            self.model.set_weight_transform(self._weight_transform)
        else:
            self.model.set_weight_transform(None)
        # Re-baseline the kernel-counter view: anything another trainer (or
        # this one's pre-processing) did since construction must not be
        # attributed to this run.
        self.strategy.attach_kernel_stats(KernelStatsView())

        for epoch in range(config.epochs):
            self.model.train()
            if self.train_mode == "accumulate":
                epoch_losses = self._train_epoch_accumulation()
            elif self.train_mode == "fused":
                epoch_losses = self._train_epoch_fused()
            else:
                epoch_losses = self._train_epoch_per_batch()

            self._end_of_epoch(epoch)
            result.loss_history.append(float(np.mean(epoch_losses)))
            if (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1:
                train_acc, test_acc = self._evaluate_epoch()
            elif result.train_accuracy_history:
                train_acc = result.train_accuracy_history[-1]
                test_acc = result.test_accuracy_history[-1]
            else:
                # Epochs before the first eval_every boundary: evaluate once
                # at the first recorded epoch and carry that value forward
                # instead of padding with 0.0, which would poison mean±std
                # aggregation across seeds.  Histories at and after the first
                # boundary are unchanged.
                train_acc, test_acc = self._evaluate_epoch()
            result.train_accuracy_history.append(train_acc)
            result.test_accuracy_history.append(test_acc)
            result.epochs_run = epoch + 1

        result.final_train_accuracy = result.train_accuracy_history[-1]
        result.final_test_accuracy = result.test_accuracy_history[-1]
        result.counters = self._counters()
        return result

    def _train_epoch_per_batch(self) -> List[float]:
        """The seed training epoch: one forward/backward/step per batch."""
        epoch_losses: List[float] = []
        order = self._train_rng.permutation(len(self.batches))
        for batch_index in order:
            batch = self.batches[batch_index]
            inputs = self._batch_inputs(int(batch_index))
            logits = self.model(inputs)
            loss = self._loss(
                logits, batch.subgraph.labels, batch.subgraph.train_mask
            )
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            self.strategy.after_optimizer_step(self.model)
            epoch_losses.append(loss.item())
        return epoch_losses

    def _train_epoch_accumulation(self) -> List[float]:
        """Reference bucket semantics: per-member steps, one update per bucket.

        ``zero_grad`` runs once per bucket, every member's ``backward()``
        accumulates into the shared parameter gradients, and the optimizer
        steps once per bucket — the seed-reachable reference the fused mode
        must match.  The epoch permutation is drawn over *buckets* (one RNG
        draw of the same length in both bucket modes); with
        ``train_bucket_nodes=1`` every bucket holds one batch and this
        degenerates to the seed per-batch loop bit-for-bit.
        """
        epoch_losses: List[float] = []
        buckets = self._train_bucket_layout()
        order = self._train_rng.permutation(len(buckets))
        for bucket_position in order:
            bucket = buckets[int(bucket_position)]
            kernels.COUNTERS.batched_train_buckets += 1
            self._batched_train_buckets += 1
            self.optimizer.zero_grad()
            for index in bucket:
                batch = self.batches[index]
                logits = self.model(self._batch_inputs(index))
                loss = self._loss(
                    logits, batch.subgraph.labels, batch.subgraph.train_mask
                )
                loss.backward()
                epoch_losses.append(loss.item())
            self.optimizer.step()
            self.strategy.after_optimizer_step(self.model)
        return epoch_losses

    def _train_epoch_fused(self) -> List[float]:
        """One block-diagonal forward + one backward + one step per bucket.

        Semantics of :meth:`_train_epoch_accumulation` (same bucket layout,
        same RNG draws, same per-bucket optimizer/write accounting) with the
        per-member forwards fused: the segmented loss applies each member's
        own mean-reduction weight, so the single backward produces exactly
        the sum of the per-member reference gradients — bit-identical where
        reductions are structural (per-row sparse kernels, dropout masks,
        per-row loss gradients), round-off contract where the fused GEMMs /
        ``reduceat`` reassociate sums (see ``docs/ARCHITECTURE.md``).
        Single-member buckets take the plain unfused step, which keeps them
        bit-identical to the reference.
        """
        epoch_losses: List[float] = []
        buckets = self._train_bucket_layout()
        order = self._train_rng.permutation(len(buckets))
        for bucket_position in order:
            bucket = buckets[int(bucket_position)]
            kernels.COUNTERS.batched_train_buckets += 1
            self._batched_train_buckets += 1
            self.optimizer.zero_grad()
            if len(bucket) == 1:
                index = bucket[0]
                batch = self.batches[index]
                logits = self.model(self._batch_inputs(index))
                loss = self._loss(
                    logits, batch.subgraph.labels, batch.subgraph.train_mask
                )
                loss.backward()
                epoch_losses.append(loss.item())
            else:
                workspace = self._bucket_workspace(bucket, count_plan_hit=True)
                fused = self._fused_train_inputs(bucket)
                kernels.COUNTERS.train_fused_forwards += 1
                self._train_fused_forwards += 1
                logits = self.model(
                    BatchInputs(features=workspace["features"], adjacency=fused)
                )
                if self.graph.is_multilabel:
                    total, member_losses = bce_with_logits_segmented(
                        logits,
                        workspace["labels"],
                        workspace["selected"],
                        workspace["member_ids"],
                        workspace["counts"],
                        plan=workspace["plan"],
                    )
                else:
                    total, member_losses = cross_entropy_segmented(
                        logits,
                        workspace["labels"],
                        workspace["selected"],
                        workspace["member_ids"],
                        workspace["counts"],
                        plan=workspace["plan"],
                    )
                if workspace["selected"].size:
                    total.backward()
                # The reference fetches the effective weights once per
                # member forward; the fused forward fetched them once, so
                # replay the other B-1 simulated re-programming events.
                if self.strategy.requires_hardware:
                    for _ in range(len(bucket) - 1):
                        for name in self._weight_mapper.layouts:
                            self._weight_mapper.record_write(name)
                epoch_losses.extend(member_losses)
            self.optimizer.step()
            self.strategy.after_optimizer_step(self.model)
        return epoch_losses

    def _check_bucket_staleness(self) -> None:
        """Invalidate bucket-derived state when ``self.batches`` is replaced.

        The bucket layouts, per-bucket workspaces and fused input memos are
        all derived from the batch list; callers that swap ``self.batches``
        after construction (sweep harnesses re-using a trainer shell) would
        otherwise keep serving buckets of the old composition.
        """
        if self._buckets_for is not self.batches:
            self._buckets_for = self.batches
            self._eval_buckets = None
            self._train_buckets = None
            self._fused_eval_cache.clear()
            self._fused_train_cache.clear()
            self._bucket_workspaces.clear()

    def _train_bucket_layout(self) -> List[List[int]]:
        """Consecutive-batch buckets capped at ``config.train_bucket_nodes``.

        Mirrors :meth:`_eval_bucket_layout` (a bucket always holds at least
        one batch); the train and eval caps are independent so the two
        layouts may differ.
        """
        self._check_bucket_staleness()
        if self._train_buckets is None:
            self._train_buckets = self._bucket_layout(
                int(self.config.train_bucket_nodes)
            )
        return self._train_buckets

    def _bucket_layout(self, cap: int) -> List[List[int]]:
        buckets: List[List[int]] = []
        current: List[int] = []
        nodes = 0
        for index, batch in enumerate(self.batches):
            if current and nodes + batch.num_nodes > cap:
                buckets.append(current)
                current, nodes = [], 0
            current.append(index)
            nodes += batch.num_nodes
        if current:
            buckets.append(current)
        return buckets

    def _bucket_workspace(self, bucket: List[int], count_plan_hit: bool = False) -> dict:
        """Hardware-independent per-bucket arrays, built once per bucket.

        Shared by the fused train and eval paths (keyed on the member tuple,
        so differing train/eval layouts never collide): member row offsets,
        the concatenated feature matrix (stable identity — the aggregation
        precompute cache keys on it), concatenated labels, the train-mask
        row selection with its member ids/counts, and the memoised
        :class:`~repro.tensor.kernels.SegmentPlan` for the per-member loss
        scatter.  ``count_plan_hit`` counts reuse (the fused train path) in
        ``kernel_segment_plan_cache_hits``.
        """
        self._check_bucket_staleness()
        key = tuple(bucket)
        workspace = self._bucket_workspaces.get(key)
        if workspace is not None:
            if count_plan_hit:
                kernels.COUNTERS.segment_plan_cache_hits += 1
            return workspace
        subgraphs = [self.batches[index].subgraph for index in bucket]
        sizes = [self.batches[index].num_nodes for index in bucket]
        offsets = np.concatenate(
            ([0], np.cumsum(np.asarray(sizes, dtype=np.int64)))
        )
        if len(bucket) == 1:
            features = subgraphs[0].features
            labels = subgraphs[0].labels
        else:
            features = np.concatenate([sub.features for sub in subgraphs], axis=0)
            labels = np.concatenate([sub.labels for sub in subgraphs], axis=0)
        selected_parts = [
            np.flatnonzero(sub.train_mask) + offsets[k]
            for k, sub in enumerate(subgraphs)
        ]
        counts = np.array([part.size for part in selected_parts], dtype=np.int64)
        selected = (
            np.concatenate(selected_parts)
            if selected_parts
            else np.zeros(0, dtype=np.int64)
        )
        member_ids = np.repeat(np.arange(len(bucket), dtype=np.int64), counts)
        workspace = {
            "offsets": offsets,
            "features": features,
            "labels": labels,
            "selected": selected,
            "member_ids": member_ids,
            "counts": counts,
            "plan": kernels.segment_plan(member_ids, len(bucket)),
        }
        self._bucket_workspaces[key] = workspace
        return workspace

    def _fused_train_inputs(self, bucket: List[int]) -> CSRMatrix:
        """Block-diagonal training adjacency of one bucket, state-memoised.

        Same state-key memoisation as the eval bucket cache, with one
        difference in the accounting: training re-programs every member's
        blocks each epoch, so a memo hit replays the per-member simulated
        write events through
        :meth:`~repro.core.hw_state.HardwareStateCache.replay_adjacency_writes`
        (falling back to a real per-member fetch when the hardware-state
        cache is disabled) instead of skipping them like eval does.
        """
        key = (
            self._hw_cache.state_key()
            if self.strategy.requires_hardware
            else ("static",)
        )
        cache_key = tuple(bucket)
        entry = self._fused_train_cache.get(cache_key)
        if entry is not None and entry[0] == key:
            if self.strategy.requires_hardware:
                for index in bucket:
                    if not self._hw_cache.replay_adjacency_writes(index):
                        self._batch_inputs(index)
            return entry[1]
        inputs = [self._batch_inputs(index) for index in bucket]
        fused, _ = CSRMatrix.block_diag([item.adjacency for item in inputs])
        self._fused_train_cache[cache_key] = (key, fused)
        return fused

    def _end_of_epoch(self, epoch: int) -> None:
        """Post-deployment fault injection, BIST re-scan, mapping refresh."""
        self.strategy.on_epoch_end()
        if not self.strategy.requires_hardware:
            return
        if self.post_deployment is None:
            return
        self.apply_fault_delta(
            self.post_deployment.per_epoch_density, replan=self.replan_on_rescan
        )

    def apply_fault_delta(
        self, extra_density: float, replan: bool = False
    ) -> BISTReport:
        """Inject extra faults, BIST re-scan, and refresh or re-plan mappings.

        This is the full post-deployment reaction cycle, callable both from
        the epoch loop and externally (the lifetime experiment drives it from
        an endurance wear-out schedule).  The injection always runs — even at
        density 0.0 — so the hardware RNG stream advances exactly as it did
        on the pre-factored epoch path (bit-identical histories).  With
        ``replan=True`` the strategy recomputes the complete block → crossbar
        plan (delta-warm-started when supported) instead of the Π-preserving
        row-permutation refresh.  Returns the fresh BIST report.
        """
        if self._blocks_per_batch is None:
            raise RuntimeError(
                "post-deployment fault reaction needs the retained per-batch "
                "blocks; construct the trainer with streaming_blocks=False"
            )
        self.hardware.inject_post_deployment(extra_density)
        report = self.hardware.bist.scan(self._adjacency_mapper.crossbars)
        self._weight_mapper.refresh_fault_masks()
        if replan:
            self._plans = self.strategy.replan_adjacency(
                self._blocks_per_batch,
                report.fault_maps,
                self._adjacency_mapper.crossbar_ids,
                self.hardware.config.crossbar_rows,
            )
        else:
            fault_maps_by_id = dict(
                zip(self._adjacency_mapper.crossbar_ids, report.fault_maps)
            )
            self._plans = self.strategy.refresh_adjacency(
                self._plans, self._blocks_per_batch, fault_maps_by_id
            )
        # Fault maps and (potentially) plans changed: cached read-backs are
        # stale.  The fault-map component of the cache key advances on its
        # own (crossbar fault epochs); this bump covers the plan refresh.
        self._hw_cache.bump_plan_version()
        return report

    @property
    def plans(self) -> Optional[List[BatchMapping]]:
        """The current per-batch adjacency mapping plans (read-only view)."""
        return self._plans

    @property
    def blocks_per_batch(self) -> Optional[List[List[np.ndarray]]]:
        """Per-batch adjacency blocks (read-only view, set by preprocessing)."""
        return self._blocks_per_batch

    @property
    def streaming_blocks_active(self) -> bool:
        """Whether this trainer runs in memory-bounded streaming mode.

        True when preprocessing retained no per-batch block lists — each
        state change re-decomposes batch adjacencies transiently instead
        (requested via ``streaming_blocks=True`` or auto-enabled above
        :data:`repro.graph.partition.STREAMING_NODE_THRESHOLD` nodes).
        """
        return self.strategy.requires_hardware and self._blocks_per_batch is None

    @property
    def adjacency_crossbar_ids(self) -> Optional[List[int]]:
        """Physical ids of the adjacency crossbars (read-only view)."""
        if self._adjacency_mapper is None:
            return None
        return list(self._adjacency_mapper.crossbar_ids)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, split: str = "test") -> float:
        """Evaluate the current model on ``split`` nodes (on faulty hardware).

        Inference runs batch-by-batch on the same crossbar mapping used for
        training, so test accuracy reflects the deployed, faulty accelerator.
        """
        if split not in ("train", "val", "test"):
            raise ValueError(f"split must be train/val/test, got {split!r}")
        mask_name = f"{split}_mask"
        self.model.eval()
        logits_chunks: List[np.ndarray] = []
        labels_chunks: List[np.ndarray] = []
        with no_grad():
            for batch_index, batch in enumerate(self.batches):
                mask = getattr(batch.subgraph, mask_name)
                if not mask.any():
                    continue
                inputs = self._batch_inputs(batch_index)
                logits = self.model(inputs)
                logits_chunks.append(logits.data[mask])
                labels_chunks.append(batch.subgraph.labels[mask])
        self.model.train()
        if not logits_chunks:
            return 0.0
        logits_all = np.concatenate(logits_chunks, axis=0)
        labels_all = np.concatenate(labels_chunks, axis=0)
        return evaluate_predictions(logits_all, labels_all)

    # ------------------------------------------------------------------ #
    # Shared / batched epoch evaluation
    # ------------------------------------------------------------------ #
    def _evaluate_epoch(self) -> Tuple[float, float]:
        """Per-epoch ``(train accuracy, test accuracy)``.

        The logits of an eval forward do not depend on the split mask, so
        both accuracies come from **one** forward per batch
        (``use_shared_eval``) — per split, the gathered logits are the exact
        arrays the per-split :meth:`evaluate` loop would produce, in the
        same batch order.  ``use_batched_eval`` additionally fuses
        consecutive batches into one block-diagonal forward per bucket (see
        :meth:`_eval_bucket_layout`).  Both flags off delegates to the seed
        per-split loop unchanged.

        Accounting note: the shared forward programs each batch's adjacency
        once per eval epoch instead of once per split, so eval-time
        ``block_write_events`` halve relative to the seed loop; the batched
        path goes further and re-fetches bucket inputs only when the hardware
        state actually changed, dropping eval-time write accounting to one
        pass per state version.  The training write stream is untouched in
        both cases; documented in ``docs/ARCHITECTURE.md``.
        """
        if not (self.use_shared_eval or self.use_batched_eval):
            return self.evaluate(split="train"), self.evaluate(split="test")
        self.model.eval()
        chunks: Dict[str, Tuple[List[np.ndarray], List[np.ndarray]]] = {
            "train": ([], []),
            "test": ([], []),
        }
        with no_grad():
            if self.use_batched_eval:
                for bucket in self._eval_bucket_layout():
                    for index, rows in zip(bucket, self._bucket_forward(bucket)):
                        self._gather_split_chunks(index, rows, chunks)
            else:
                for index, batch in enumerate(self.batches):
                    sub = batch.subgraph
                    if not (sub.train_mask.any() or sub.test_mask.any()):
                        continue
                    logits = self.model(self._batch_inputs(index))
                    self._gather_split_chunks(index, logits.data, chunks)
        self.model.train()
        accuracies = []
        for split in ("train", "test"):
            logits_chunks, labels_chunks = chunks[split]
            if not logits_chunks:
                accuracies.append(0.0)
                continue
            accuracies.append(
                evaluate_predictions(
                    np.concatenate(logits_chunks, axis=0),
                    np.concatenate(labels_chunks, axis=0),
                )
            )
        return accuracies[0], accuracies[1]

    def _gather_split_chunks(
        self,
        batch_index: int,
        logits_rows: np.ndarray,
        chunks: Dict[str, Tuple[List[np.ndarray], List[np.ndarray]]],
    ) -> None:
        sub = self.batches[batch_index].subgraph
        for split, (logits_chunks, labels_chunks) in chunks.items():
            mask = getattr(sub, f"{split}_mask")
            if not mask.any():
                continue
            logits_chunks.append(logits_rows[mask])
            labels_chunks.append(sub.labels[mask])

    def _eval_bucket_layout(self) -> List[List[int]]:
        """Consecutive-batch buckets capped at ``config.eval_bucket_nodes``.

        Cached per batch-list: a bucket always holds at least one batch, so
        an oversized batch forms its own (B=1, unfused) bucket.  Replacing
        ``self.batches`` after construction invalidates the cached layout
        (and every bucket-derived memo) via :meth:`_check_bucket_staleness`.
        """
        self._check_bucket_staleness()
        if self._eval_buckets is None:
            self._eval_buckets = self._bucket_layout(
                int(self.config.eval_bucket_nodes)
            )
        return self._eval_buckets

    def _bucket_forward(self, bucket: List[int]) -> List[np.ndarray]:
        """One eval forward over a bucket; returns per-batch logits rows.

        Multi-batch buckets run the model once on the block-diagonal fusion
        of the member adjacencies (features concatenated row-wise) and split
        the logits back at the member row offsets.  Per-row kernels over a
        block-diagonal CSR never mix rows across members, so per-member
        results match the unfused forwards (bit-identical through the sparse
        kernels; dense GEMMs are subject to the round-off contract).

        The bucket inputs are memoised against the hardware-state version
        (mapping-plan version + crossbar fault epochs): between state changes
        the crossbars hold the same bits and evaluation is a pure re-read, so
        the per-batch adjacency fetches — and the simulated re-programming
        they account for — happen only when the state actually changed (see
        the accounting note on :meth:`_evaluate_epoch`).
        """
        self._batched_eval_forwards += 1
        key = (
            self._hw_cache.state_key()
            if self.strategy.requires_hardware
            else ("static",)
        )
        entry = self._fused_eval_cache.get(bucket[0])
        if entry is None or entry[0] != key:
            # Member offsets and the concatenated features come from the
            # bucket workspace shared with the fused train path — their
            # identity is stable across hardware-state changes, so only the
            # adjacency fusion is rebuilt here.
            workspace = self._bucket_workspace(bucket)
            inputs = [self._batch_inputs(index) for index in bucket]
            if len(inputs) == 1:
                fused = inputs[0].adjacency
            else:
                fused, _ = CSRMatrix.block_diag(
                    [item.adjacency for item in inputs]
                )
            entry = (key, fused, workspace["features"], workspace["offsets"])
            self._fused_eval_cache[bucket[0]] = entry
        _, fused, features, offsets = entry
        logits = self.model(BatchInputs(features=features, adjacency=fused))
        return [
            logits.data[offsets[k] : offsets[k + 1]]
            for k in range(len(offsets) - 1)
        ]

    # ------------------------------------------------------------------ #
    # Counters for the timing model
    # ------------------------------------------------------------------ #
    def _counters(self) -> Dict[str, float]:
        counters: Dict[str, float] = {
            "num_batches": float(len(self.batches)),
            "epochs": float(self.config.epochs),
            "avg_batch_nodes": float(
                np.mean([b.num_nodes for b in self.batches]) if self.batches else 0.0
            ),
            # Grid shapes exist in both block modes (decompose emits one
            # block per grid cell, so this equals the retained block count).
            "total_blocks": float(
                sum(rb * cb for rb, cb in self._grids) if self._grids else 0.0
            ),
        }
        if self._weight_mapper is not None:
            counters["num_weight_crossbars"] = float(
                self._weight_mapper.num_weight_crossbars
            )
            counters["weight_write_events"] = float(
                self._weight_mapper.weight_write_events
            )
        if self._adjacency_mapper is not None:
            counters["num_adjacency_crossbars"] = float(
                len(self._adjacency_mapper.crossbars)
            )
            counters["block_write_events"] = float(
                self._adjacency_mapper.block_write_events
            )
        counters["batched_eval_forwards"] = float(self._batched_eval_forwards)
        counters["batched_eval_buckets"] = float(
            len(self._eval_bucket_layout()) if self.use_batched_eval else 0
        )
        counters["batched_train_buckets"] = float(self._batched_train_buckets)
        counters["train_fused_forwards"] = float(self._train_fused_forwards)
        counters["train_bucket_layout"] = float(
            len(self._train_bucket_layout())
            if self.train_mode in ("accumulate", "fused")
            else 0
        )
        engine_stats = self.strategy.mapping_engine_stats()
        if engine_stats:
            counters.update(engine_stats)
        return counters
