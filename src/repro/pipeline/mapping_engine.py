"""Mapping GNN data structures onto (faulty) ReRAM crossbars.

Two mappers mirror the two computation phases:

* :class:`WeightCrossbarMapper` — combination phase.  Every 2-D model
  parameter is quantised to 16-bit fixed point, bit-sliced into 2-bit cells
  and tiled over a dedicated set of crossbars.  Reading the weights back
  applies the crossbars' stuck-at faults cell-wise and reassembles the
  (possibly exploded) floating point values.
* :class:`AdjacencyCrossbarMapper` — aggregation phase.  The binary adjacency
  of a mini-batch subgraph is decomposed into crossbar-sized blocks which are
  programmed onto the crossbars chosen by the active strategy's
  :class:`~repro.core.mapping.BatchMapping` (with the strategy's row
  permutations); the faulty read-back is reassembled into the adjacency the
  GNN actually aggregates with.

:class:`HardwareEnvironment` bundles the accelerator state shared by both:
the crossbar pool (with injected faults), the BIST controller, the
fixed-point format, and the split of crossbars between weights and adjacency.

Both mappers expose two bit-identical execution paths: the seed per-block /
per-cell loops (the reference, kept behind ``use_batched=False`` /
``fused=False``) and vectorised fast paths — a stacked fault-mask gather for
the adjacency read-back, a fused per-code mask application for the weights —
that the epoch cache in :mod:`repro.core.hw_state` builds on.

How these mappers sit between the strategy layer (which plans the mappings
and reports the cost engine's / hardware-state cache's work counters through
:meth:`~repro.core.strategies.Strategy.mapping_engine_stats` into the trainer
counters and :attr:`~repro.pipeline.timing.TimingBreakdown.components`) and
the crossbar layer below is documented in ``docs/ARCHITECTURE.md``, together
with the two cache-invalidation protocols that keep the fast paths honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mapping import BatchMapping
from repro.graph.sparse import CSRMatrix
from repro.hardware.config import DEFAULT_CONFIG, ReRAMConfig
from repro.hardware.bist import BISTController
from repro.hardware.crossbar import Crossbar
from repro.hardware.faults import (
    FaultMap,
    FaultModel,
    apply_faults_to_binary_batch,
    apply_faults_to_cells,
)
from repro.hardware.quantization import (
    FixedPointFormat,
    cells_to_codes,
    codes_to_cells,
    dequantize,
    fault_code_masks,
    quantize,
    quantize_faulty_dequantize,
)
from repro.hardware.tile import CrossbarPool
from repro.tensor.module import Module
from repro.utils.validation import check_permutation


# --------------------------------------------------------------------------- #
# Weight mapping
# --------------------------------------------------------------------------- #
@dataclass
class WeightLayout:
    """Physical placement of one weight matrix on the weight crossbars."""

    name: str
    shape: Tuple[int, int]
    cell_shape: Tuple[int, int]
    tiles: List[Tuple[Crossbar, slice, slice]] = field(default_factory=list)

    @property
    def num_crossbars(self) -> int:
        return len(self.tiles)


class WeightCrossbarMapper:
    """Maps every 2-D model parameter onto a pool of weight crossbars.

    Parameters
    ----------
    use_fused:
        Route :meth:`effective_weights` through the fused
        quantise → fault → dequantise pass (a single integer array per value,
        no per-cell intermediates).  The seed bit-sliced pipeline is kept
        (``False``) as the reference path; both are bit-identical (enforced
        by ``tests/test_core_hw_state.py``).
    """

    def __init__(
        self,
        model: Module,
        crossbars: Sequence[Crossbar],
        fmt: FixedPointFormat,
        config: ReRAMConfig = DEFAULT_CONFIG,
        use_fused: bool = True,
    ) -> None:
        self.fmt = fmt
        self.config = config
        self.use_fused = bool(use_fused)
        #: Bumped on every :meth:`refresh_fault_masks`; effective-weight
        #: caches key on it (see :mod:`repro.core.hw_state`).
        self.fault_version = 0
        self._crossbars = list(crossbars)
        self.layouts: Dict[str, WeightLayout] = {}
        self.weight_write_events = 0
        cursor = 0
        for dotted_name, param in model.named_parameters():
            if param.data.ndim != 2:
                continue
            # Layers identify their weights by the parameter's own ``name``
            # (set at initialisation); fall back to the dotted module path
            # for parameters created without one.
            name = getattr(param, "name", "") or dotted_name
            if name in self.layouts:
                raise ValueError(f"duplicate hardware parameter name {name!r}")
            rows, cols = param.data.shape
            cell_cols = cols * fmt.num_cells
            layout = WeightLayout(
                name=name, shape=(rows, cols), cell_shape=(rows, cell_cols)
            )
            for row_start in range(0, rows, config.crossbar_rows):
                row_stop = min(row_start + config.crossbar_rows, rows)
                for col_start in range(0, cell_cols, config.crossbar_cols):
                    col_stop = min(col_start + config.crossbar_cols, cell_cols)
                    if cursor >= len(self._crossbars):
                        raise ValueError(
                            "not enough weight crossbars: parameter "
                            f"{name!r} needs more than {len(self._crossbars)}"
                        )
                    layout.tiles.append(
                        (
                            self._crossbars[cursor],
                            slice(row_start, row_stop),
                            slice(col_start, col_stop),
                        )
                    )
                    cursor += 1
            self.layouts[name] = layout
        self.crossbars_used = cursor
        self._fault_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._code_masks: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        # Last validated row permutation per parameter, keyed by the identity
        # of the caller's array: strategies hand the same permutation object
        # to every per-batch re-programming, so re-validating it each call is
        # pure hot-loop overhead (the strong reference keeps ``is`` sound).
        self._perm_cache: Dict[str, Tuple[Any, np.ndarray]] = {}
        self.refresh_fault_masks()

    # ------------------------------------------------------------------ #
    def refresh_fault_masks(self) -> None:
        """Re-assemble the per-parameter fault masks from the crossbar maps.

        Must be called after post-deployment faults change the crossbars'
        fault maps.  Also rebuilds the per-code clear/set masks the fused
        read-back path consumes and bumps :attr:`fault_version`.
        """
        self._fault_cache.clear()
        self._code_masks.clear()
        for name, layout in self.layouts.items():
            sa0 = np.zeros(layout.cell_shape, dtype=bool)
            sa1 = np.zeros(layout.cell_shape, dtype=bool)
            for crossbar, row_slice, col_slice in layout.tiles:
                local_rows = row_slice.stop - row_slice.start
                local_cols = col_slice.stop - col_slice.start
                sa0[row_slice, col_slice] = crossbar.fault_map.sa0[:local_rows, :local_cols]
                sa1[row_slice, col_slice] = crossbar.fault_map.sa1[:local_rows, :local_cols]
            self._fault_cache[name] = (sa0, sa1)
            self._code_masks[name] = fault_code_masks(sa0, sa1, self.fmt)
        self.fault_version += 1

    def layout(self, name: str) -> WeightLayout:
        if name not in self.layouts:
            raise KeyError(f"parameter {name!r} is not mapped to weight crossbars")
        return self.layouts[name]

    @property
    def num_weight_crossbars(self) -> int:
        """Total crossbars occupied by weights (used by the timing model)."""
        return self.crossbars_used

    # ------------------------------------------------------------------ #
    def row_fault_severity(self, name: str) -> np.ndarray:
        """Per-(logical row, cell column) fault severity for NR's reordering.

        The severity of a faulty cell is the magnitude of the value range it
        controls (``cell_levels ** position`` counted from the LSB cell), so
        MSB-cell faults dominate the sum — matching the weight-explosion
        asymmetry.
        """
        layout = self.layout(name)
        sa0, sa1 = self._fault_cache[name]
        any_fault = (sa0 | sa1).astype(np.float64)
        num_cells = self.fmt.num_cells
        significance = np.array(
            [float(self.fmt.cell_levels ** (num_cells - 1 - i)) for i in range(num_cells)]
        )
        weights = np.tile(significance, layout.shape[1])
        return any_fault * weights[None, :]

    def row_mismatch_cost(self, name: str, values: np.ndarray) -> np.ndarray:
        """Cell-mismatch cost of storing each logical row at each physical row.

        ``cost[r, s]`` counts the cells of logical weight row ``r`` whose
        programmed value would disagree with a stuck cell at physical row
        ``s`` (SA0 vs a non-zero cell, SA1 vs a non-saturated cell).  This is
        the "overlap with SAFs" objective that neuron-reordering remapping
        minimises; it deliberately ignores the SA0/SA1 asymmetry and the cell
        significance, matching the baseline's behaviour in the paper.
        """
        layout = self.layout(name)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != layout.shape:
            raise ValueError(
                f"values shape {values.shape} does not match layout {layout.shape}"
            )
        cells = codes_to_cells(quantize(values, self.fmt), self.fmt)
        cell_matrix = cells.reshape(layout.cell_shape)
        sa0, sa1 = self._fault_cache[name]
        nonzero = (cell_matrix != 0).astype(np.float64)
        unsaturated = (cell_matrix != self.fmt.cell_levels - 1).astype(np.float64)
        return nonzero @ sa0.astype(np.float64).T + unsaturated @ sa1.astype(np.float64).T

    # ------------------------------------------------------------------ #
    def record_write(self, name: str) -> None:
        """Account one simulated re-programming of ``name``'s crossbars.

        Used by the effective-weight cache on training-time hits: the
        hardware re-programs the weights every batch even when the simulator
        serves the faulty view from cache.
        """
        self.weight_write_events += self.layout(name).num_crossbars

    def effective_weights(
        self,
        name: str,
        values: np.ndarray,
        row_permutation: Optional[np.ndarray] = None,
        count_write: bool = True,
        fused: Optional[bool] = None,
    ) -> np.ndarray:
        """Return the weights the crossbars actually provide to the MVM.

        Parameters
        ----------
        name:
            Parameter name (must have been registered at construction).
        values:
            Current master (digital) weight values.
        row_permutation:
            Optional storage permutation: logical row ``i`` is programmed
            into physical row ``row_permutation[i]`` (the NR baseline's
            remapping).  The returned matrix is already un-permuted, i.e. it
            is the effective value of the *logical* weight matrix.
        count_write:
            Whether this call represents a re-programming of the weights
            (True during training, False for read-only analyses).
        fused:
            Override :attr:`use_fused` for this call.  The fused path applies
            the precomputed per-code clear/set masks in a single integer
            pass; the seed path materialises the full bit-sliced cell
            pipeline.  Outputs are bit-identical.
        """
        layout = self.layout(name)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != layout.shape:
            raise ValueError(
                f"values shape {values.shape} does not match layout {layout.shape}"
            )
        rows = layout.shape[0]
        permutation: Optional[np.ndarray] = None
        if row_permutation is not None:
            cached = self._perm_cache.get(name)
            if cached is not None and cached[0] is row_permutation:
                permutation = cached[1]
            else:
                permutation = check_permutation(
                    row_permutation, rows, "row_permutation"
                )
                self._perm_cache[name] = (row_permutation, permutation)

        use_fused = self.use_fused if fused is None else bool(fused)
        if use_fused:
            # Logical row ``i`` sits at physical row ``permutation[i]``, so
            # gathering the per-code masks with the permutation applies the
            # physical faults directly to the logical matrix — no
            # scatter/gather round trip through the stored layout.
            clear, set_ = self._code_masks[name]
            if permutation is not None:
                clear = clear[permutation]
                set_ = set_[permutation]
            result = quantize_faulty_dequantize(values, clear, set_, self.fmt)
        else:
            if permutation is None:
                permutation = np.arange(rows, dtype=np.int64)
            stored = np.empty_like(values)
            stored[permutation] = values

            codes = quantize(stored, self.fmt)
            cells = codes_to_cells(codes, self.fmt)  # (rows, cols, num_cells)
            cell_matrix = cells.reshape(layout.cell_shape)
            sa0, sa1 = self._fault_cache[name]
            faulty_matrix = apply_faults_to_cells(
                cell_matrix, sa0, sa1, self.fmt.cell_levels
            )
            faulty_cells = faulty_matrix.reshape(cells.shape)
            faulty_codes = cells_to_codes(faulty_cells, self.fmt)
            faulty_stored = dequantize(faulty_codes, self.fmt)
            result = faulty_stored[permutation]

        if count_write:
            self.weight_write_events += layout.num_crossbars
        return result


# --------------------------------------------------------------------------- #
# Adjacency mapping
# --------------------------------------------------------------------------- #
@dataclass
class DecomposeCounters:
    """Peak-memory accounting for the sparse block decomposition.

    ``bytes_dense_padded_avoided`` is the size of the padded
    ``(row_blocks·rows) × (col_blocks·cols)`` float64 array the pre-streaming
    implementation materialised minus what the sparse path actually allocated
    — the number the million-node benchmark's peak-RSS ceiling rests on.
    """

    decompose_calls: int = 0
    blocks_materialised: int = 0
    blocks_shared_zero: int = 0
    bytes_materialised: int = 0
    bytes_dense_padded_avoided: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "decompose_calls": self.decompose_calls,
            "decompose_blocks_materialised": self.blocks_materialised,
            "decompose_blocks_shared_zero": self.blocks_shared_zero,
            "decompose_bytes_materialised": self.bytes_materialised,
            "decompose_bytes_dense_padded_avoided": self.bytes_dense_padded_avoided,
        }

    def reset(self) -> None:
        self.decompose_calls = 0
        self.blocks_materialised = 0
        self.blocks_shared_zero = 0
        self.bytes_materialised = 0
        self.bytes_dense_padded_avoided = 0


#: Module-level accounting, mirroring ``tensor.kernels.COUNTERS``: cheap
#: integer bumps on the hot path, read (and reset) by tests and the
#: streaming-mode benchmark leg.
DECOMPOSE_COUNTERS = DecomposeCounters()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    The peak-memory accounting hook for the memory-bounded streaming mode:
    the million-node benchmark leg runs in a subprocess and asserts this
    stays under the documented ceiling.

    On Linux this reads ``VmHWM`` from ``/proc/self/status`` rather than
    ``getrusage``: ``ru_maxrss`` survives ``execve`` (it lives in the
    signal-struct accounting, not the replaced ``mm``), so a child spawned
    by a fat parent — e.g. the benchmark subprocess under a pytest session
    that just ran the kernel benchmarks — would inherit the *parent's*
    peak.  ``VmHWM`` belongs to the fresh address space and starts clean.
    """
    import resource
    import sys

    try:  # pragma: no branch
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-procfs platforms
        pass
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes here
        return int(usage)
    return int(usage) * 1024


_SHARED_ZERO_BLOCKS: Dict[Tuple[int, int], np.ndarray] = {}


def _shared_zero_block(rows: int, cols: int) -> np.ndarray:
    """One immutable all-zero block per geometry, shared by every empty slot.

    Consumers treat decomposition blocks as read-only (they are stacked,
    programmed and compared, never written), so empty blocks — the vast
    majority at streaming scale, where a batch touches a handful of column
    blocks out of thousands — can alias a single frozen array.
    """
    key = (rows, cols)
    block = _SHARED_ZERO_BLOCKS.get(key)
    if block is None:
        block = np.zeros((rows, cols), dtype=np.float64)
        block.flags.writeable = False
        _SHARED_ZERO_BLOCKS[key] = block
    return block


def decompose_adjacency(
    adjacency: CSRMatrix, rows: int, cols: int
) -> Tuple[List[np.ndarray], Tuple[int, int]]:
    """Split a (binary) adjacency into ``rows × cols`` dense blocks.

    Blocks on the right/bottom edge are zero-padded to the crossbar shape.
    Returns ``(blocks, (row_blocks, col_blocks))`` in row-major order.  A
    free function (rather than only a mapper method) so the sweep engine can
    compute the decomposition once per ``(graph, geometry)`` and share it
    across every run of a grid.

    Memory contract (streaming mode): only blocks that contain at least one
    CSR entry are materialised — O(nnz + nonempty·rows·cols) — and empty
    blocks alias one shared read-only zero array.  Nothing the size of the
    padded dense matrix is ever allocated, which is what lets a 10^6-node
    graph decompose batch-by-batch inside a fixed memory budget
    (``DECOMPOSE_COUNTERS`` records the avoided allocation;
    :func:`peak_rss_bytes` is the matching process-level hook).  The blocks
    are bit-identical to the dense scatter this replaces: a stable sort
    groups entries per block without reordering them inside a block, so
    duplicate ``(row, col)`` entries resolve last-wins exactly as the single
    dense fancy-index assignment did, and the same ``> 0`` threshold
    binarises the result.
    """
    n, m = adjacency.shape
    row_blocks = max(1, -(-n // rows))
    col_blocks = max(1, -(-m // cols))
    total_blocks = row_blocks * col_blocks

    entry_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(adjacency.indptr))
    indices = adjacency.indices
    bi = entry_rows // rows
    bj = indices // cols
    block_ids = bi * col_blocks + bj
    order = np.argsort(block_ids, kind="stable")
    sorted_ids = block_ids[order]
    local_r = (entry_rows - bi * rows)[order]
    local_c = (indices - bj * cols)[order]
    sorted_data = adjacency.data[order]

    zero = _shared_zero_block(rows, cols)
    blocks: List[np.ndarray] = [zero] * total_blocks
    if sorted_ids.size:
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [sorted_ids.size]))
        for start, stop in zip(starts, stops):
            block = np.zeros((rows, cols), dtype=np.float64)
            block[local_r[start:stop], local_c[start:stop]] = sorted_data[start:stop]
            blocks[int(sorted_ids[start])] = (block > 0).astype(np.float64)
        materialised = len(starts)
    else:
        materialised = 0

    block_bytes = rows * cols * 8
    DECOMPOSE_COUNTERS.decompose_calls += 1
    DECOMPOSE_COUNTERS.blocks_materialised += materialised
    DECOMPOSE_COUNTERS.blocks_shared_zero += total_blocks - materialised
    DECOMPOSE_COUNTERS.bytes_materialised += materialised * block_bytes
    DECOMPOSE_COUNTERS.bytes_dense_padded_avoided += (
        total_blocks - materialised
    ) * block_bytes
    return blocks, (row_blocks, col_blocks)


class AdjacencyCrossbarMapper:
    """Programs per-batch adjacency blocks onto crossbars and reads them back.

    Parameters
    ----------
    use_batched:
        Route :meth:`apply_mapping` through the batched read-back: the
        batch's blocks are stacked into a ``(B, rows, cols)`` tensor and the
        per-crossbar SA0/SA1 masks are applied with one vectorised gather —
        no per-block ``program_binary``/``read_binary`` round trips; the
        endurance counters advance in bulk.  The seed per-block loop is kept
        (``False``) as the reference path; both are bit-identical (enforced
        by ``tests/test_core_hw_state.py``).
    """

    def __init__(
        self,
        crossbars: Sequence[Crossbar],
        config: ReRAMConfig = DEFAULT_CONFIG,
        use_batched: bool = True,
    ) -> None:
        if not crossbars:
            raise ValueError("adjacency mapper needs at least one crossbar")
        self.config = config
        self.use_batched = bool(use_batched)
        self.crossbars = list(crossbars)
        self.by_id: Dict[int, Crossbar] = {x.crossbar_id: x for x in self.crossbars}
        self.block_write_events = 0

    @property
    def crossbar_ids(self) -> List[int]:
        return [x.crossbar_id for x in self.crossbars]

    def fault_maps(self) -> List[FaultMap]:
        return [x.fault_map for x in self.crossbars]

    def fault_maps_by_id(self) -> Dict[int, FaultMap]:
        return {x.crossbar_id: x.fault_map for x in self.crossbars}

    def writes_per_crossbar(self, mapping: BatchMapping) -> List[Tuple[Crossbar, int]]:
        """Resolved ``(crossbar, full-array writes)`` pairs for one mapping.

        One entry per distinct target crossbar, counting the blocks programmed
        onto it — the simulated write-accounting unit.  Single source for both
        the batched read-back's bulk endurance update and the epoch cache's
        hit replay (:mod:`repro.core.hw_state`), so the two cannot diverge.
        """
        counts: Dict[int, int] = {}
        for block_mapping in mapping.blocks:
            counts[block_mapping.crossbar_index] = (
                counts.get(block_mapping.crossbar_index, 0) + 1
            )
        return [(self.by_id[index], count) for index, count in counts.items()]

    # ------------------------------------------------------------------ #
    def decompose(self, adjacency: CSRMatrix) -> Tuple[List[np.ndarray], Tuple[int, int]]:
        """Split a (binary) adjacency into crossbar-sized dense blocks.

        Blocks on the right/bottom edge are zero-padded to the crossbar shape.
        Returns ``(blocks, (row_blocks, col_blocks))`` in row-major order.
        """
        return decompose_adjacency(
            adjacency, self.config.crossbar_rows, self.config.crossbar_cols
        )

    def apply_mapping(
        self,
        adjacency: CSRMatrix,
        mapping: BatchMapping,
        blocks: Optional[List[np.ndarray]] = None,
        grid: Optional[Tuple[int, int]] = None,
        batched: Optional[bool] = None,
    ) -> CSRMatrix:
        """Program the blocks per ``mapping`` and return the faulty adjacency.

        The returned matrix is the structural adjacency the aggregation phase
        actually uses: SA1 cells appear as spurious edges, SA0 cells delete
        stored edges.  ``batched`` overrides :attr:`use_batched` for this
        call; both paths produce bit-identical results and identical
        write/endurance accounting.
        """
        if blocks is None or grid is None:
            blocks, grid = self.decompose(adjacency)
        if len(mapping) != len(blocks):
            raise ValueError(
                f"mapping covers {len(mapping)} blocks but the adjacency has "
                f"{len(blocks)}"
            )
        use_batched = self.use_batched if batched is None else bool(batched)
        if use_batched and mapping.blocks:
            faulty_dense = self._read_back_batched(blocks, mapping, grid)
        else:
            faulty_dense = self._read_back_loop(blocks, mapping, grid)
        n = adjacency.shape[0]
        faulty_dense = faulty_dense[:n, : adjacency.shape[1]]
        # Faults outside the logical adjacency area (padding region) are
        # irrelevant; the truncation above drops them.
        np.fill_diagonal(faulty_dense, 0.0)
        return CSRMatrix.from_dense(faulty_dense)

    def _read_back_loop(
        self,
        blocks: List[np.ndarray],
        mapping: BatchMapping,
        grid: Tuple[int, int],
    ) -> np.ndarray:
        """The seed per-block path: one program/read round trip per block."""
        rows = self.config.crossbar_rows
        cols = self.config.crossbar_cols
        row_blocks, col_blocks = grid
        faulty_dense = np.zeros((row_blocks * rows, col_blocks * cols), dtype=np.float64)
        for block_mapping in mapping.blocks:
            index = block_mapping.block_index
            block = blocks[index]
            crossbar = self.by_id[block_mapping.crossbar_index]
            crossbar.program_binary(block, row_permutation=block_mapping.row_permutation)
            self.block_write_events += 1
            read_back = crossbar.read_binary(
                row_permutation=block_mapping.row_permutation
            )
            bi, bj = divmod(index, col_blocks)
            faulty_dense[bi * rows : (bi + 1) * rows, bj * cols : (bj + 1) * cols] = read_back
        return faulty_dense

    def _read_back_batched(
        self,
        blocks: List[np.ndarray],
        mapping: BatchMapping,
        grid: Tuple[int, int],
    ) -> np.ndarray:
        """Vectorised read-back: one fault gather over the stacked batch.

        Per block, programming then reading through the stuck-at masks
        reduces to ``where(sa1[perm], 1, where(sa0[perm], 0, block))``; the
        whole batch is resolved with a single fancy-indexed gather over the
        stacked per-crossbar masks and one ``np.where`` chain, then scattered
        into the dense grid with one reshape/transpose.  Crossbar state
        (stored contents, endurance counters) is updated in bulk so it ends
        exactly where the per-block loop would leave it.
        """
        rows = self.config.crossbar_rows
        cols = self.config.crossbar_cols
        row_blocks, col_blocks = grid
        order = mapping.blocks
        block_idx = np.array([m.block_index for m in order], dtype=np.int64)
        stacked = np.stack([np.asarray(blocks[i]) for i in block_idx])
        if stacked.shape[1:] != (rows, cols):
            raise ValueError(
                f"binary block shape {stacked.shape[1:]} must equal crossbar "
                f"shape ({rows}, {cols})"
            )
        ones = (stacked > 0).astype(np.float64)
        perms = np.stack(
            [
                check_permutation(m.row_permutation, rows, "row_permutation")
                for m in order
            ]
        )

        unique_index: Dict[int, int] = {}
        for m in order:
            unique_index.setdefault(m.crossbar_index, len(unique_index))
        unique_ids = list(unique_index)
        sa0_stack = np.stack([self.by_id[c].fault_map.sa0 for c in unique_ids])
        sa1_stack = np.stack([self.by_id[c].fault_map.sa1 for c in unique_ids])
        owner = np.array([unique_index[m.crossbar_index] for m in order], dtype=np.int64)
        # sa*_sel[b, i, :] = sa*_stack[owner[b], perms[b, i], :] — the fault
        # rows each logical block row actually lands on.
        sa0_sel = sa0_stack[owner[:, None], perms]
        sa1_sel = sa1_stack[owner[:, None], perms]
        read_stack = apply_faults_to_binary_batch(ones, sa0_sel, sa1_sel)

        grid_arr = np.zeros((row_blocks, col_blocks, rows, cols), dtype=np.float64)
        grid_arr[block_idx // col_blocks, block_idx % col_blocks] = read_stack
        faulty_dense = (
            grid_arr.transpose(0, 2, 1, 3).reshape(row_blocks * rows, col_blocks * cols)
        )

        # Bulk hardware-state update: endurance counters advance by the
        # per-crossbar block count, stored contents end at the last block
        # programmed per crossbar (matching the loop's final state).
        for crossbar, count in self.writes_per_crossbar(mapping):
            crossbar.record_simulated_writes(count)
        last: Dict[int, int] = {}
        for position, m in enumerate(order):
            last[m.crossbar_index] = position
        for crossbar_index, position in last.items():
            self.by_id[crossbar_index].store_binary(
                blocks[block_idx[position]],
                row_permutation=order[position].row_permutation,
            )
        self.block_write_events += len(order)
        return faulty_dense


# --------------------------------------------------------------------------- #
# Hardware environment
# --------------------------------------------------------------------------- #
class HardwareEnvironment:
    """Accelerator state shared by one training run.

    Parameters
    ----------
    config:
        Architecture configuration.
    fault_model:
        Fault model used for pre-deployment injection (and post-deployment
        increments).
    weight_fraction:
        Fraction of the pool reserved for weight storage; the remainder holds
        adjacency blocks.
    fmt:
        Fixed-point format for weights (its ``max_value`` bounds the weight
        explosion magnitude).
    num_crossbars:
        Override the pool size (defaults to the full accelerator).
    """

    def __init__(
        self,
        config: ReRAMConfig = DEFAULT_CONFIG,
        fault_model: Optional[FaultModel] = None,
        weight_fraction: float = 0.5,
        fmt: Optional[FixedPointFormat] = None,
        num_crossbars: Optional[int] = None,
        bist_coverage: float = 1.0,
    ) -> None:
        if not 0.0 < weight_fraction < 1.0:
            raise ValueError(f"weight_fraction must be in (0, 1), got {weight_fraction}")
        self.config = config
        self.fault_model = fault_model
        self.fmt = fmt or FixedPointFormat(
            total_bits=config.weight_bits,
            max_value=4.0,
            bits_per_cell=config.bits_per_cell,
        )
        self.pool = CrossbarPool(
            config=config, fault_model=fault_model, num_crossbars=num_crossbars
        )
        split_point = max(1, min(len(self.pool) - 1, int(len(self.pool) * weight_fraction)))
        self.weight_crossbars, self.adjacency_crossbars = self.pool.split(split_point)
        self.bist = BISTController(config=config, coverage=bist_coverage)

    def overall_fault_density(self) -> float:
        return self.pool.overall_density()

    def inject_post_deployment(self, extra_density: float) -> None:
        self.pool.inject_post_deployment(extra_density)
