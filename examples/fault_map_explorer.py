#!/usr/bin/env python
"""Explore how Algorithm 1 places adjacency blocks on faulty crossbars.

Builds a small accelerator, injects clustered stuck-at faults, decomposes one
mini-batch adjacency matrix into crossbar-sized blocks, and compares three
placements:

* the naive sequential (fault-unaware) mapping,
* neuron-reordering's coarse row-group permutation,
* FARe's fault-aware mapping (Algorithm 1),

reporting the number of spurious/deleted edges each one leaves in the
adjacency actually seen by the aggregation phase, plus the per-block
placement decisions FARe made.

Usage:
    python examples/fault_map_explorer.py [--density 0.05] [--ratio 1 1]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.strategies import FaReStrategy, FaultUnawareStrategy, NeuronReorderingStrategy
from repro.experiments import configs
from repro.graph.datasets import load_dataset
from repro.graph.sampling import ClusterBatchSampler
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import AdjacencyCrossbarMapper, HardwareEnvironment
from repro.utils.tabulate import format_table


def corruption_counts(adjacency, faulty) -> tuple:
    ideal = adjacency.to_dense()
    observed = faulty.to_dense()
    spurious = int(np.sum((observed == 1) & (ideal == 0)))
    deleted = int(np.sum((observed == 0) & (ideal == 1)))
    return spurious, deleted


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--density", type=float, default=0.05)
    parser.add_argument("--ratio", type=float, nargs=2, default=(1.0, 1.0), metavar=("SA0", "SA1"))
    parser.add_argument("--dataset", default="reddit", choices=["ppi", "reddit", "amazon2m", "ogbl"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    settings = configs.scale_settings("ci")
    hw_config = configs.hardware_config("ci")
    graph = load_dataset(args.dataset, scale="ci", seed=args.seed)
    sampler = ClusterBatchSampler(
        graph, settings.num_parts, settings.batch_clusters, seed=args.seed
    )
    batch = next(iter(sampler.epoch(shuffle=False)))

    hardware = HardwareEnvironment(
        config=hw_config,
        fault_model=FaultModel(args.density, tuple(args.ratio), seed=args.seed),
        weight_fraction=settings.weight_fraction,
        num_crossbars=settings.num_crossbars,
    )
    mapper = AdjacencyCrossbarMapper(hardware.adjacency_crossbars, hw_config)
    blocks, grid = mapper.decompose(batch.subgraph.adjacency)
    report = hardware.bist.scan(mapper.crossbars)

    print(
        f"Batch subgraph: {batch.num_nodes} nodes, {batch.num_edges} directed edges, "
        f"{len(blocks)} blocks of {hw_config.crossbar_rows}x{hw_config.crossbar_cols}"
    )
    print(
        f"Adjacency crossbars: {len(mapper.crossbars)}, overall fault density "
        f"{hardware.overall_fault_density():.3%} (SA0:SA1 = {args.ratio[0]:.0f}:{args.ratio[1]:.0f})"
    )
    print()

    strategies = {
        "fault_unaware": FaultUnawareStrategy(),
        "nr": NeuronReorderingStrategy(),
        "fare": FaReStrategy(row_method="greedy"),
    }
    rows = []
    fare_plan = None
    for name, strategy in strategies.items():
        plan = strategy.plan_adjacency(
            [blocks], report.fault_maps, mapper.crossbar_ids, hw_config.crossbar_rows
        )[0]
        faulty = mapper.apply_mapping(batch.subgraph.adjacency, plan, blocks=blocks, grid=grid)
        spurious, deleted = corruption_counts(batch.subgraph.adjacency, faulty)
        rows.append([name, spurious, deleted, spurious + deleted])
        if name == "fare":
            fare_plan = plan
    print(
        format_table(
            ["Mapping strategy", "Spurious edges (SA1)", "Deleted edges (SA0)", "Total corrupted"],
            rows,
            title="Adjacency corruption after mapping one batch",
        )
    )

    print()
    block_rows = []
    for mapping in fare_plan.blocks:
        fmap = mapper.by_id[mapping.crossbar_index].fault_map
        block_rows.append(
            [
                mapping.block_index,
                mapping.crossbar_index,
                float(np.mean(blocks[mapping.block_index])),
                fmap.num_sa0,
                fmap.num_sa1,
                mapping.cost,
                mapping.sa1_mismatch,
            ]
        )
    print(
        format_table(
            [
                "Block",
                "Crossbar",
                "Block density",
                "Crossbar SA0",
                "Crossbar SA1",
                "Weighted cost",
                "Residual SA1 overlap",
            ],
            block_rows,
            title="FARe block -> crossbar placement (Algorithm 1)",
        )
    )
    if fare_plan.pruned_crossbars:
        print(f"\nCrossbars pruned as hopeless: {fare_plan.pruned_crossbars}")
    if fare_plan.relaxed_blocks:
        print(f"Blocks relaxed out of the assignment: {fare_plan.relaxed_blocks}")


if __name__ == "__main__":
    main()
