#!/usr/bin/env python
"""Large-graph quickstart: train on a million-node graph in bounded memory.

Generates a planted-partition graph chunk-by-chunk (no dense ``N x N``
intermediate), partitions it with the streaming multilevel matcher, and
trains one epoch of a GCN on faulty ReRAM hardware in streaming-blocks
mode — per-batch adjacency blocks are decomposed on demand and dropped
after programming instead of being retained for the whole run.  The report
at the end shows the process peak RSS next to the bytes the decomposition
*transiently* materialised: the gap is the memory the streaming mode saved.

At the default 1,000,000 nodes (~8 M edges) this takes a few minutes and
peaks below 2 GiB; ``--nodes 120000`` finishes in ~15 s.

The training step runs in the fused mode by default — one block-diagonal
forward, a segmented per-member loss, and one optimizer step per
node-capped bucket of cluster batches; ``--train-mode accumulate`` runs
the per-member gradient-accumulation reference (same semantics to machine
round-off) and ``--train-mode per_batch`` the seed one-step-per-batch loop.

Usage:
    python examples/large_graph.py [--nodes 1000000] [--seed 0]
                                   [--train-mode fused|accumulate|per_batch]
"""

from __future__ import annotations

import argparse
import time

from repro.core.strategies import build_strategy
from repro.graph.datasets import synthetic_graph_streaming
from repro.hardware.config import ReRAMConfig
from repro.hardware.faults import FaultModel
from repro.pipeline.mapping_engine import (
    DECOMPOSE_COUNTERS,
    HardwareEnvironment,
    peak_rss_bytes,
)
from repro.pipeline.trainer import FaultyTrainer, TrainingConfig

MIB = float(1024**2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1_000_000, help="graph size")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--train-mode",
        choices=("per_batch", "accumulate", "fused"),
        default="fused",
        help="training step: fused block-diagonal buckets (default), "
        "per-member gradient accumulation, or the seed per-batch loop",
    )
    args = parser.parse_args()

    parts = max(2, args.nodes // 1250)
    print(f"Generating {args.nodes:,}-node graph (chunked, no dense N x N) ...")
    start = time.perf_counter()
    graph = synthetic_graph_streaming(
        args.nodes, parts, 8, 8, avg_degree=8.0, seed=args.seed + 3
    )
    gen_s = time.perf_counter() - start
    print(f"  {graph.adjacency.nnz:,} edges in {gen_s:.1f}s")

    hardware = HardwareEnvironment(
        config=ReRAMConfig(
            crossbar_rows=64, crossbar_cols=64, crossbars_per_tile=160, num_tiles=2
        ),
        fault_model=FaultModel(0.05, (9.0, 1.0), seed=args.seed + 4),
        weight_fraction=0.5,
    )
    training = TrainingConfig(
        epochs=1,
        hidden_features=16,
        dropout=0.0,
        num_parts=parts,
        batch_clusters=1,
        seed=args.seed,
    )

    print(f"Partitioning into {parts} parts (streaming matcher) ...")
    start = time.perf_counter()
    trainer = FaultyTrainer(
        graph,
        "gcn",
        build_strategy("fault_unaware"),
        training,
        hardware=hardware,
        train_mode=args.train_mode,
    )
    preprocess_s = time.perf_counter() - start
    mode = "streaming" if trainer.streaming_blocks_active else "retained"
    print(f"  done in {preprocess_s:.1f}s; block mode: {mode}; "
          f"train mode: {trainer.train_mode}")

    print("Training 1 epoch on faulty hardware ...")
    start = time.perf_counter()
    result = trainer.train()
    train_s = time.perf_counter() - start

    materialised = DECOMPOSE_COUNTERS.as_dict()["decompose_bytes_materialised"]
    print()
    print(f"loss {result.loss_history[-1]:.3f}, "
          f"test accuracy {result.test_accuracy_history[-1]:.3f} "
          f"({train_s:.1f}s)")
    print(f"peak RSS                  {peak_rss_bytes() / MIB:8.0f} MiB")
    print(f"blocks streamed through   {materialised / MIB:8.0f} MiB "
          "(transient, never resident at once)")


if __name__ == "__main__":
    main()
