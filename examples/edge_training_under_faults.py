#!/usr/bin/env python
"""Edge-deployment scenario: pick a fault-tolerance strategy for a workload.

A small edge device trains a GraphSAGE model on the Amazon2M surrogate.  The
accelerator has aged: pre-deployment faults are present and additional faults
emerge during training (post-deployment).  This example sweeps all
fault-handling strategies across fault densities, prints an accuracy matrix
(the shape of the paper's Fig. 5/6) and estimates the execution-time overhead
of each strategy with the pipelined timing model (the shape of Fig. 7).

Usage:
    python examples/edge_training_under_faults.py [--dataset amazon2m]
        [--model sage] [--epochs N] [--post-deployment 0.01]
"""

from __future__ import annotations

import argparse

from repro.core.strategies import build_strategy
from repro.experiments import configs
from repro.experiments.runner import run_single
from repro.graph.datasets import DATASET_REGISTRY
from repro.pipeline.timing import estimate_execution_time, timing_inputs_from_spec
from repro.utils.tabulate import format_table

STRATEGIES = ("fault_free", "fault_unaware", "nr", "clipping", "fare")
DENSITIES = (0.01, 0.03, 0.05)


def accuracy_sweep(args) -> None:
    rows = []
    for density in DENSITIES:
        row = [f"{density:.0%}"]
        for strategy in STRATEGIES:
            result = run_single(
                args.dataset,
                args.model,
                strategy,
                0.0 if strategy == "fault_free" else density,
                sa_ratio=(9.0, 1.0),
                scale="ci",
                seed=args.seed,
                epochs=args.epochs,
                post_deployment_extra=(
                    None if strategy == "fault_free" else args.post_deployment or None
                ),
            )
            row.append(result.final_test_accuracy)
        rows.append(row)
    print(
        format_table(
            ["Fault density"] + list(STRATEGIES),
            rows,
            title=(
                f"Test accuracy — {args.dataset} ({args.model.upper()}), "
                f"SA0:SA1 = 9:1, post-deployment extra = {args.post_deployment:.0%}"
            ),
        )
    )


def timing_estimate(args) -> None:
    spec = DATASET_REGISTRY[args.dataset]
    inputs = timing_inputs_from_spec(spec, track_post_deployment=bool(args.post_deployment))
    baseline = estimate_execution_time(build_strategy("fault_free"), inputs)
    rows = []
    for strategy_name in STRATEGIES:
        strategy = build_strategy(
            strategy_name, **configs.strategy_kwargs_for(strategy_name, "paper")
        )
        breakdown = estimate_execution_time(strategy, inputs)
        rows.append([strategy_name, breakdown.total, breakdown.normalized(baseline)])
    print()
    print(
        format_table(
            ["Strategy", "Estimated time (s)", "Normalised"],
            rows,
            title=f"Paper-scale execution-time estimate — {args.dataset}",
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="amazon2m", choices=sorted(DATASET_REGISTRY))
    parser.add_argument("--model", default="sage", choices=["gcn", "gat", "sage"])
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--post-deployment", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    accuracy_sweep(args)
    timing_estimate(args)


if __name__ == "__main__":
    main()
