#!/usr/bin/env python
"""Quickstart: train one GNN on faulty ReRAM hardware with and without FARe.

Runs three short training sessions of a GCN on the Reddit surrogate:

1. on ideal (fault-free) hardware,
2. on hardware with 5 % stuck-at faults and no mitigation,
3. on the same faulty hardware with the FARe framework enabled,

then prints the resulting test accuracies side by side.  Everything runs on
CPU in well under a minute.

Usage:
    python examples/quickstart.py [--epochs N] [--density 0.05] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import api
from repro.utils.tabulate import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8, help="training epochs")
    parser.add_argument("--density", type=float, default=0.05, help="fault density")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    print(f"Training GCN on the Reddit surrogate ({args.epochs} epochs) ...")
    results = api.compare_strategies(
        dataset="reddit",
        model="gcn",
        strategies=("fault_free", "fault_unaware", "fare"),
        fault_density=args.density,
        sa_ratio=(1.0, 1.0),
        epochs=args.epochs,
        scale="ci",
        seed=args.seed,
    )

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.fault_density,
                result.final_train_accuracy,
                result.final_test_accuracy,
            ]
        )
    print()
    print(
        format_table(
            ["Strategy", "Fault density", "Train accuracy", "Test accuracy"],
            rows,
            title=f"Reddit (GCN), {args.density:.0%} stuck-at faults, SA0:SA1 = 1:1",
        )
    )

    restored = (
        results["fare"].final_test_accuracy
        - results["fault_unaware"].final_test_accuracy
    )
    lost = (
        results["fault_free"].final_test_accuracy
        - results["fare"].final_test_accuracy
    )
    print()
    print(f"FARe restores {restored:+.3f} accuracy over fault-unaware training")
    print(f"and sits {lost:+.3f} below the fault-free reference.")


if __name__ == "__main__":
    main()
