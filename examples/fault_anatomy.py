#!/usr/bin/env python
"""Fig. 1 in code: what a single stuck-at fault does to stored data.

Part (a) — weight matrix: a 16-bit fixed-point weight is spread over eight
2-bit cells; a stuck-at-1 fault near the most-significant cell "explodes" the
value towards the top of the representable range, while the same fault near
the least-significant cell barely moves it.  Weight clipping bounds the
damage.

Part (b) — adjacency matrix: the binary adjacency block is stored directly on
a crossbar; SA1 cells add spurious edges, SA0 cells delete real ones, and a
row permutation that aligns the fault pattern with the block's structure
(what FARe computes) removes most of the corruption.

Usage:
    python examples/fault_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import block_crossbar_cost
from repro.hardware.crossbar import Crossbar
from repro.hardware.faults import FaultMap
from repro.hardware.quantization import (
    FixedPointFormat,
    dequantize_from_cells,
    quantize_to_cells,
)
from repro.utils.tabulate import format_table


def weight_explosion_demo() -> None:
    fmt = FixedPointFormat(total_bits=16, max_value=4.0, bits_per_cell=2)
    weight = 0.05
    cells = quantize_to_cells(np.array([weight]), fmt)[0]

    rows = []
    for label, position in (("MSB cell", 0), ("middle cell", 3), ("LSB cell", fmt.num_cells - 1)):
        for fault, stuck_value in (("SA1", fmt.cell_levels - 1), ("SA0", 0)):
            corrupted = cells.copy()
            corrupted[position] = stuck_value
            read_back = float(dequantize_from_cells(corrupted[None, :], fmt)[0])
            clipped = float(np.clip(read_back, -1.0, 1.0))
            rows.append([f"{fault} @ {label}", weight, read_back, clipped])
    print(
        format_table(
            ["Fault", "Stored weight", "Read-back value", "After clipping (tau=1)"],
            rows,
            title="(a) Weight matrix: one faulty 2-bit cell of a 16-bit weight",
        )
    )


def adjacency_corruption_demo() -> None:
    # The 4x4 example of Fig. 1(b).
    block = np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 1, 0],
            [1, 0, 0, 1],
            [0, 0, 0, 0],
        ],
        dtype=float,
    )
    fault_map = FaultMap.from_indices(
        (4, 4),
        sa0_indices=[(2, 0)],
        sa1_indices=[(0, 3), (2, 1)],
    )
    crossbar = Crossbar(0, rows=4, cols=4, fault_map=fault_map)

    crossbar.program_binary(block)
    naive = crossbar.read_binary()

    cost, permutation, _ = block_crossbar_cost(block, fault_map, sa1_weight=4.0, method="hungarian")
    crossbar.program_binary(block, row_permutation=permutation)
    remapped = crossbar.read_binary(row_permutation=permutation)

    def show(matrix):
        return "\n".join("  " + " ".join(str(int(v)) for v in row) for row in matrix)

    print()
    print("(b) Adjacency block stored on a crossbar with 2 SA1 + 1 SA0 faults")
    print("ideal block:")
    print(show(block))
    print(f"naive placement   ({int(np.sum(naive != block))} corrupted entries):")
    print(show(naive))
    print(
        f"FARe row permutation {permutation.tolist()} "
        f"({int(np.sum(remapped != block))} corrupted entries, weighted cost {cost:.0f}):"
    )
    print(show(remapped))


def main() -> None:
    weight_explosion_demo()
    adjacency_corruption_demo()


if __name__ == "__main__":
    main()
