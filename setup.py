"""Setuptools entry point for the FARe reproduction.

The library is a plain ``src``-layout package with a single hard runtime
dependency (numpy).  Most workflows never install it — the repository is
designed to run in place with ``PYTHONPATH=src`` (see README.md) — but
``pip install -e .`` works for users who want ``import repro`` available
everywhere.  The test extra mirrors what the suites under ``tests/`` and
``benchmarks/`` import.
"""

from setuptools import find_packages, setup

setup(
    name="fare-repro",
    version="1.0.0",
    description=(
        "Reproduction of FARe: fault-aware training of GNNs on "
        "ReRAM-based PIM accelerators (DATE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
            "scipy",  # cross-checks the from-scratch solvers
        ],
    },
)
