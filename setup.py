"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on offline machines whose setuptools
lacks the ``wheel`` backend required by PEP 517 editable installs
(``pip install -e . --no-use-pep517`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
